"""Transport layer 2: reliable delivery over lossy links.

Per directed flow (this endpoint -> one destination) the sender assigns
monotonically increasing sequence numbers, keeps every unacknowledged
segment in an outstanding table, and runs a retransmission timer per
segment: capped exponential backoff with +/-20% jitter so synchronized
losses do not retransmit in lockstep.  The receiver ACKs every data
segment -- including duplicates, whose original ACK may itself have been
lost -- and suppresses duplicates with a per-source (floor, seen-set)
window before anything reaches the component above.

Arming is per-link: in ``TransportParams.mode="auto"`` a send is
reliable exactly when the link toward its destination has a
:class:`~repro.sim.network.LinkProfile` (loss or jitter injected through
the channel interface).  Unarmed sends bypass this layer entirely -- no
header bytes, no ACK traffic, no extra latency -- so a lossless fabric
behaves exactly as it did before the transport stack existed, and the
legacy fabric-wide ``drop_probability`` knob keeps exercising the
client's end-to-end fallback path.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Set

from repro.core.messages import (TP_FLAG_ACK, TP_FLAG_CHECKPOINT,
                                 TRANSPORT_VERSION, TransportHeader)
from repro.obs.metrics import MetricsRegistry
from repro.params import TransportParams
from repro.sim.engine import Environment
from repro.sim.network import Message
from repro.sim.resources import Store
from repro.transport.channel import Channel

#: message kind of standalone ACK segments (never seen by components;
#: the demux loop consumes them below the session inbox)
TP_ACK_KIND = "tp.ack"


@dataclass
class Segment:
    """An armed data segment: transport header + the original message."""

    header: TransportHeader
    kind: str
    payload: Any
    size_bytes: int
    segments: int = 2
    extra_latency_ns: float = 0.0


@dataclass(frozen=True)
class Ack:
    """A standalone acknowledgment for one data segment."""

    header: TransportHeader


@dataclass
class _TxEntry:
    segment: Segment
    dst: str
    acked: bool = False
    attempts: int = 0


@dataclass
class _TxFlow:
    next_seq: int = 1
    outstanding: Dict[int, _TxEntry] = field(default_factory=dict)


@dataclass
class _RxFlow:
    #: every sequence number <= floor has been seen (window compaction)
    floor: int = 0
    seen: Set[int] = field(default_factory=set)


class ReliableChannel:
    """Sequencing, ack/retransmit, and dedup over one channel."""

    def __init__(self, env: Environment, channel: Channel,
                 params: TransportParams, rng: random.Random,
                 registry: Optional[MetricsRegistry] = None,
                 default_segments: int = 2):
        if params.mode not in ("auto", "always", "never"):
            raise ValueError(f"unknown transport mode {params.mode!r}")
        self.env = env
        self.channel = channel
        self.params = params
        self.default_segments = default_segments
        self._rng = rng
        #: messages surfaced to the component above, post-dedup
        self.inbox: Store = Store(env)
        self._tx: Dict[str, _TxFlow] = {}
        self._rx: Dict[str, _RxFlow] = {}
        if registry is None:
            registry = channel.registry
        self.registry = registry
        prefix = f"{channel.name}.tp"
        self._m_tx_segments = registry.counter(f"{prefix}.tx_segments")
        self._m_rx_segments = registry.counter(f"{prefix}.rx_segments")
        self._m_retransmits = registry.counter(f"{prefix}.retransmits")
        self._m_duplicates = registry.counter(
            f"{prefix}.duplicates_dropped")
        self._m_acks_tx = registry.counter(f"{prefix}.acks_tx")
        self._m_acks_rx = registry.counter(f"{prefix}.acks_rx")
        self._m_gave_up = registry.counter(f"{prefix}.gave_up")
        self._m_version_drops = registry.counter(f"{prefix}.version_drops")
        self._m_checkpoint_frames = registry.counter(
            f"{prefix}.checkpoint_frames")
        self._m_checkpoint_resumes = registry.counter(
            f"{prefix}.checkpoint_resumes")
        registry.gauge(f"{prefix}.outstanding", fn=self._outstanding)
        env.process(self._demux_loop())

    # Compatibility properties over the registry-backed counters.
    @property
    def retransmits(self) -> int:
        return self._m_retransmits.value

    @property
    def duplicates_dropped(self) -> int:
        return self._m_duplicates.value

    @property
    def checkpoint_resumes(self) -> int:
        return self._m_checkpoint_resumes.value

    def _outstanding(self) -> float:
        return float(sum(len(f.outstanding) for f in self._tx.values()))

    # -- sending -------------------------------------------------------------
    def armed_to(self, dst: str) -> bool:
        """Whether sends toward ``dst`` get per-hop reliability."""
        mode = self.params.mode
        if mode == "never":
            return False
        if mode == "always":
            return True
        profile = self.channel.link_profile(dst)
        return profile is not None and profile.lossy

    def send(self, dst: str, kind: str, payload: Any, size_bytes: int,
             segments: Optional[int] = None, extra_latency_ns: float = 0.0,
             hop_epoch: int = 0, checkpoint: bool = False) -> None:
        """Send one message; reliable iff the link toward ``dst`` is armed."""
        wire_segments = (segments if segments is not None
                         else self.default_segments)
        if not self.armed_to(dst):
            self.channel.send(Message(
                kind=kind, src=self.channel.name, dst=dst,
                size_bytes=size_bytes, payload=payload,
            ), segments=wire_segments, extra_latency_ns=extra_latency_ns)
            return
        flow = self._tx.setdefault(dst, _TxFlow())
        seq = flow.next_seq
        flow.next_seq += 1
        flags = TP_FLAG_CHECKPOINT if checkpoint else 0
        segment = Segment(
            header=TransportHeader(seq=seq, flags=flags,
                                   hop_epoch=hop_epoch),
            kind=kind, payload=payload, size_bytes=size_bytes,
            segments=wire_segments, extra_latency_ns=extra_latency_ns)
        entry = _TxEntry(segment=segment, dst=dst)
        flow.outstanding[seq] = entry
        self._m_tx_segments.inc()
        if checkpoint:
            self._m_checkpoint_frames.inc()
        self._transmit(entry)
        self.env.process(self._retransmit_loop(flow, seq, entry))

    def _transmit(self, entry: _TxEntry) -> None:
        segment = entry.segment
        self.channel.send(Message(
            kind=segment.kind, src=self.channel.name, dst=entry.dst,
            size_bytes=segment.size_bytes + self.params.header_bytes,
            payload=segment,
        ), segments=segment.segments,
            extra_latency_ns=segment.extra_latency_ns)

    def _retransmit_loop(self, flow: _TxFlow, seq: int, entry: _TxEntry):
        """Process: retransmit ``seq`` until acked or out of budget."""
        timeout = self.params.hop_timeout_ns
        while True:
            yield self.env.timeout(timeout * self._rng.uniform(0.8, 1.2))
            if entry.acked:
                return
            if entry.attempts >= self.params.max_hop_retries:
                # Out of per-hop budget: surface the loss to the layer
                # above by silence -- the client's end-to-end retry is
                # the last resort.
                flow.outstanding.pop(seq, None)
                self._m_gave_up.inc()
                return
            entry.attempts += 1
            self._m_retransmits.inc()
            if entry.segment.header.is_checkpoint:
                # A retransmitted checkpoint frame *is* the hop-level
                # resume: the traversal continues from hop k's
                # serialized state instead of restarting from init().
                self._m_checkpoint_resumes.inc()
            self._transmit(entry)
            timeout = min(timeout * 2.0, self.params.hop_backoff_cap_ns)

    def take_over(self, dst: str, include_all: bool = False) -> list:
        """Cancel and return every unacked *checkpointed* payload to ``dst``.

        Recovery calls this when ``dst`` is declared dead: checkpoint
        frames carry the traversal's serialized mid-flight state, so
        instead of letting the per-hop timers retry into a black hole
        (and eventually give up into the client's end-to-end timeout),
        the caller re-injects the payloads at the range's new owner.
        Non-checkpoint frames keep their timers and take the normal
        give-up path -- they carry no resumable state -- unless
        ``include_all`` is set: a *permanently* dead destination never
        acks, so even fresh submissions are reclaimed and re-resolved
        instead of burning their whole retry budget into the black
        hole.  Returned in sequence order (the order originally sent).
        """
        flow = self._tx.get(dst)
        if flow is None:
            return []
        resumed = []
        for seq in sorted(flow.outstanding):
            entry = flow.outstanding[seq]
            if include_all or entry.segment.header.is_checkpoint:
                entry.acked = True  # parks the retransmit loop
                del flow.outstanding[seq]
                resumed.append(entry.segment.payload)
                if entry.segment.header.is_checkpoint:
                    self._m_checkpoint_resumes.inc()
        return resumed

    # -- receiving -----------------------------------------------------------
    def _demux_loop(self):
        while True:
            message = yield self.channel.endpoint.inbox.get()
            payload = message.payload
            if isinstance(payload, Ack):
                self._handle_ack(message.src, payload)
            elif isinstance(payload, Segment):
                self._handle_data(message, payload)
            else:
                # Unarmed (cut-through) traffic goes straight up.
                self.inbox.put(message)

    def _handle_ack(self, src: str, ack: Ack) -> None:
        self._m_acks_rx.inc()
        if ack.header.version != TRANSPORT_VERSION:
            self._m_version_drops.inc()
            return
        flow = self._tx.get(src)
        if flow is None:
            return
        entry = flow.outstanding.pop(ack.header.ack, None)
        if entry is not None:
            entry.acked = True

    def _handle_data(self, message: Message, segment: Segment) -> None:
        if segment.header.version != TRANSPORT_VERSION:
            self._m_version_drops.inc()
            return
        self._m_rx_segments.inc()
        # Always ack -- a duplicate means our previous ACK (or the
        # sender's timer) raced a loss, and silence would only provoke
        # more retransmissions.
        self._send_ack(message.src, segment)
        flow = self._rx.setdefault(message.src, _RxFlow())
        seq = segment.header.seq
        if seq <= flow.floor or seq in flow.seen:
            self._m_duplicates.inc()
            return
        flow.seen.add(seq)
        while len(flow.seen) > self.params.dedup_window:
            flow.floor += 1
            flow.seen.discard(flow.floor)
        self.inbox.put(Message(
            kind=segment.kind, src=message.src, dst=message.dst,
            size_bytes=segment.size_bytes, payload=segment.payload,
            hops=message.hops))

    def _send_ack(self, dst: str, segment: Segment) -> None:
        self._m_acks_tx.inc()
        ack = Ack(header=TransportHeader(
            seq=0, flags=TP_FLAG_ACK, ack=segment.header.seq,
            hop_epoch=segment.header.hop_epoch))
        self.channel.send(Message(
            kind=TP_ACK_KIND, src=self.channel.name, dst=dst,
            size_bytes=self.params.ack_bytes, payload=ack,
        ), segments=segment.segments)
