"""Transport layer 3: the traversal-aware session components talk to.

A :class:`TransportSession` composes a :class:`~repro.transport.channel.
Channel` and a :class:`~repro.transport.reliable.ReliableChannel` and is
the single send/receive surface for a component: ``session.send(...)``
on the way out, ``yield session.inbox.get()`` on the way in.

The session understands just enough about traversal frames to make
per-hop reliability meaningful: a :class:`~repro.core.messages.
TraversalRequest` in flight between memory nodes carries the serialized
(cur_ptr, scratch pad, iteration count) state -- a *checkpoint* -- so
the session stamps its hop count into the transport header's hop-epoch
field and flags in-progress RUNNING frames as checkpoints.  When such a
frame is lost and retransmitted by the reliable layer, the traversal
resumes from hop k's checkpoint instead of restarting end-to-end from
``init()``; the client's ``PendingTraversal`` retry remains only as the
last resort when a hop exhausts its own retransmission budget.
"""

from __future__ import annotations

import random
from typing import Any, Optional

from repro.core.messages import RequestStatus, TraversalRequest
from repro.obs.metrics import MetricsRegistry
from repro.params import TransportParams
from repro.sim.engine import Environment
from repro.sim.network import Endpoint, Fabric
from repro.sim.resources import Store
from repro.transport.channel import Channel
from repro.transport.reliable import ReliableChannel


class TransportSession:
    """One component's full protocol stack instance."""

    def __init__(self, env: Environment, fabric: Fabric, name: str,
                 params: Optional[TransportParams] = None,
                 registry: Optional[MetricsRegistry] = None,
                 seed: Optional[int] = None,
                 default_segments: int = 2):
        if params is None:
            params = TransportParams()
        if seed is None:
            seed = fabric.seed
        self.env = env
        self.name = name
        self.params = params
        self.channel = Channel(env, fabric, name, registry=registry)
        #: timer-jitter source, deterministic per (run seed, session name)
        self._rng = random.Random(f"{seed}:tp:{name}")
        self.reliable = ReliableChannel(
            env, self.channel, params, self._rng,
            registry=registry, default_segments=default_segments)

    @property
    def endpoint(self) -> Endpoint:
        """The underlying NIC endpoint (byte/message counters live here)."""
        return self.channel.endpoint

    @property
    def inbox(self) -> Store:
        """Deduplicated, demultiplexed receive queue for the component."""
        return self.reliable.inbox

    def armed_to(self, dst: str) -> bool:
        return self.reliable.armed_to(dst)

    def take_over(self, dst: str, include_all: bool = False) -> list:
        """Reclaim unacked checkpoint payloads toward a dead ``dst``.

        See :meth:`~repro.transport.reliable.ReliableChannel.take_over`;
        recovery re-injects the returned frames at the new range owner.
        ``include_all`` reclaims non-checkpoint frames too (permanent
        node death rather than a transient loss).
        """
        return self.reliable.take_over(dst, include_all=include_all)

    def send(self, dst: str, kind: str, payload: Any, size_bytes: int,
             segments: Optional[int] = None,
             extra_latency_ns: float = 0.0) -> None:
        """Send one message, deriving transport metadata from the payload."""
        hop_epoch = 0
        checkpoint = False
        if isinstance(payload, TraversalRequest):
            hop_epoch = payload.node_hops
            # An in-progress RUNNING frame carries resumable traversal
            # state; the initial client submission (no progress yet)
            # restarts identically either way, so it is not one.  MOVED
            # redirects carry the same resumable state (the traversal
            # continues at the segment's new owner), so they checkpoint
            # identically.
            checkpoint = (payload.status in (RequestStatus.RUNNING,
                                             RequestStatus.MOVED)
                          and (payload.node_hops > 0
                               or payload.iterations_done > 0))
        self.reliable.send(dst, kind, payload, size_bytes,
                           segments=segments,
                           extra_latency_ns=extra_latency_ns,
                           hop_epoch=hop_epoch, checkpoint=checkpoint)
