"""Layered reliable-transport stack (channel -> reliable -> session).

Every component that talks on the fabric -- the pulse client, switch,
and accelerators, and the RPC/cache/AIFM baselines -- sends and receives
through a :class:`~repro.transport.session.TransportSession` instead of
touching its :class:`~repro.sim.network.Endpoint` directly.  The stack
owns sequencing, per-hop ACKs, timeout-driven retransmission with capped
exponential backoff + jitter, and duplicate suppression; the session
layer additionally understands traversal frames well enough to stamp
hop epochs and account checkpoint retransmissions (resuming a dropped
traversal from hop k instead of restarting it end-to-end).

Layering (bottom up):

* :class:`~repro.transport.channel.Channel` -- binds a name to a fabric
  endpoint and exposes raw sends plus the per-link loss/jitter
  configuration surface (:class:`~repro.sim.network.LinkProfile`).
* :class:`~repro.transport.reliable.ReliableChannel` -- per-destination
  sequencing and ack/retransmit, per-source dedup.  A send is *armed*
  (reliable) when :class:`~repro.params.TransportParams` says so for
  that link; unarmed sends cut through with zero added cost or traffic.
* :class:`~repro.transport.session.TransportSession` -- the application
  face: traversal-aware framing and the ``inbox`` components consume.
"""

from repro.transport.channel import Channel
from repro.transport.reliable import Ack, ReliableChannel, Segment
from repro.transport.session import TransportSession

__all__ = [
    "Ack",
    "Channel",
    "ReliableChannel",
    "Segment",
    "TransportSession",
]
