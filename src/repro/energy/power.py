"""Power models and energy-per-request accounting (section 7.1, Fig 7).

Methodology follows the paper: run each system at a request rate that
saturates memory bandwidth, measure average power of the serving hardware,
and divide by throughput.  The measurement-side caveats are reproduced as
modeling choices:

* pulse's power is the *whole FPGA board* (XRT reports every rail,
  including static power of unused logic) -- an upper bound;
* RPC power covers the active workers' share of CPU package + DRAM but
  not the NIC -- a lower bound;
* wimpy cores draw less instantaneous power, but their static/uncore
  share does not scale with the clock, so at 1.0 GHz each worker still
  burns most of a full core's floor -- the mechanism behind the paper's
  counterintuitive result that RPC-W can cost *more energy per request*
  than RPC (also observed by Clio [49]).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.params import PowerParams, SystemParams


def system_power_watts(system_name: str, params: SystemParams,
                       nodes: int = 1, workers_per_node: int = 1) -> float:
    """Average serving power for a system at saturation."""
    power: PowerParams = params.power
    name = system_name.lower()
    if name in ("pulse", "adpdm", "pulse-acc"):
        return power.fpga_watts * nodes + power.client_watts
    if name in ("rpc", "cache+rpc"):
        return (power.cpu_worker_watts * workers_per_node * nodes
                + power.client_watts)
    if name == "rpc-w":
        return (power.wimpy_worker_watts * workers_per_node * nodes
                + power.client_watts)
    if name in ("cache", "cache-based"):
        # All the work happens at the CPU node's paging path; memory
        # nodes are passive DRAM.  Charge the fault-handling cores.
        return (power.cpu_worker_watts * workers_per_node
                + power.client_watts)
    raise ValueError(f"unknown system {system_name!r}")


def energy_per_request_nj(power_watts: float,
                          throughput_per_s: float) -> float:
    """nanojoules per request: watts / (requests/second) * 1e9."""
    if throughput_per_s <= 0:
        return float("inf")
    return power_watts / throughput_per_s * 1e9


@dataclass(frozen=True)
class EnergyReport:
    system: str
    power_watts: float
    throughput_per_s: float
    energy_per_request_nj: float

    @property
    def energy_per_request_uj(self) -> float:
        return self.energy_per_request_nj / 1e3

    @property
    def requests_per_joule(self) -> float:
        if self.energy_per_request_nj == float("inf"):
            return 0.0
        return 1e9 / self.energy_per_request_nj


def measure_energy(system_name: str, params: SystemParams,
                   throughput_per_s: float, nodes: int = 1,
                   workers_per_node: int = 1) -> EnergyReport:
    watts = system_power_watts(system_name, params, nodes,
                               workers_per_node)
    return EnergyReport(
        system=system_name,
        power_watts=watts,
        throughput_per_s=throughput_per_s,
        energy_per_request_nj=energy_per_request_nj(watts,
                                                    throughput_per_s),
    )
