"""Energy accounting (Fig 7)."""

from repro.energy.power import (
    EnergyReport,
    energy_per_request_nj,
    measure_energy,
    system_power_watts,
)

__all__ = [
    "EnergyReport",
    "energy_per_request_nj",
    "measure_energy",
    "system_power_watts",
]
