"""The compared systems of section 7.

* :class:`~repro.baselines.rpc.RpcSystem` -- pointer traversals offloaded
  as RPCs to the memory-node CPU (eRPC/DPDK-style stack); ``wimpy=True``
  gives RPC-W, the 1.0 GHz SmartNIC-core emulation.
* :class:`~repro.baselines.cache.CacheSystem` -- Fastswap-style demand
  paging: traversals run at the CPU node against a page cache, every miss
  is a 4 KB fault over the network.
* :class:`~repro.baselines.aifm.CacheRpcSystem` -- AIFM-style
  data-structure-aware object cache with RPC fallback over a TCP-flavored
  stack (single node, as in the paper).

All of them execute the *same* compiled kernels through the same
interpreter as pulse; only where the instructions run and what each step
costs differ -- which is precisely the comparison the paper makes.
"""

from repro.baselines.rpc import RpcSystem
from repro.baselines.cache import CacheSystem
from repro.baselines.aifm import CacheRpcSystem

__all__ = ["CacheRpcSystem", "CacheSystem", "RpcSystem"]
