"""Scaffolding shared by the baseline systems."""

from __future__ import annotations

import math
from typing import Optional

from repro.mem.allocator import PlacementPolicy
from repro.mem.node import GlobalMemory
from repro.obs.metrics import MetricsRegistry
from repro.params import DEFAULT_PARAMS, CpuParams, SystemParams
from repro.sim.engine import Environment
from repro.sim.network import Fabric
from repro.sim.resources import Resource


class BaselineSystem:
    """Environment + fabric + rack memory, without pulse hardware.

    Every baseline shares the pulse cluster's observability contract: a
    single :class:`~repro.obs.metrics.MetricsRegistry` carrying the
    fabric's byte counters, the memory nodes' DRAM gauges, and the
    system-wide ``request.latency_ns`` histogram, so one ``snapshot()``
    compares all five systems.
    """

    def __init__(self, node_count: int = 1,
                 params: Optional[SystemParams] = None,
                 policy: PlacementPolicy = PlacementPolicy.UNIFORM,
                 node_capacity: Optional[int] = None,
                 seed: int = 0):
        self.params = params if params is not None else DEFAULT_PARAMS
        self.env = Environment()
        self.registry = MetricsRegistry(clock=lambda: self.env.now)
        self.fabric = Fabric(self.env, self.params.network, seed=seed,
                             registry=self.registry)
        capacity = (node_capacity if node_capacity is not None
                    else self.params.memory.node_capacity_bytes)
        self.memory = GlobalMemory(node_count, capacity, policy)
        for node in self.memory.nodes:
            node.attach_metrics(self.registry, clock=lambda: self.env.now)
        self._latency = self.registry.histogram("request.latency_ns")
        self._m_traversals = self.registry.counter(
            "client0.client.traversals")
        self._m_result_faults = self.registry.counter(
            "client0.client.faults")

    @property
    def node_count(self) -> int:
        return self.memory.node_count

    def begin_measurement(self) -> None:
        """Reset metrics + byte windows for the post-warmup window."""
        self.registry.reset()
        self.fabric.begin_window()

    def metrics_snapshot(self) -> dict:
        """One JSON-able export of every metric in the system."""
        return self.registry.snapshot()

    def _record_result(self, result) -> None:
        """Account one finished traversal in the registry."""
        self._m_traversals.inc()
        if result.faulted:
            self._m_result_faults.inc()
        self._latency.record(result.latency_ns)
        self.completed.append(result)

    def _hold(self, resource: Resource, duration: float):
        grant = resource.request()
        yield grant
        try:
            yield self.env.timeout(duration)
        finally:
            resource.release(grant)


def workers_to_saturate(cpu: CpuParams, bandwidth_bytes_per_ns: float,
                        window_bytes: int = 256,
                        instructions_per_iteration: int = 20) -> int:
    """Minimum memory-node workers that saturate the bandwidth cap.

    Section 7: "we employ the minimum number of memory-node workers that
    can saturate the memory bandwidth" -- important for the energy
    comparison, where idle workers would burn power for nothing.  One
    worker streams ``window_bytes`` per iteration and each iteration
    costs a DRAM access plus its compute.
    """
    iteration_ns = (cpu.memory_access_ns(window_bytes)
                    + instructions_per_iteration * cpu.instruction_ns())
    per_worker = window_bytes / iteration_ns
    return max(1, math.ceil(bandwidth_bytes_per_ns / per_worker))
