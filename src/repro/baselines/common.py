"""Scaffolding shared by the baseline systems."""

from __future__ import annotations

import math
from typing import Optional

from repro.mem.allocator import PlacementPolicy
from repro.mem.node import GlobalMemory
from repro.params import DEFAULT_PARAMS, CpuParams, SystemParams
from repro.sim.engine import Environment
from repro.sim.network import Fabric
from repro.sim.resources import Resource


class BaselineSystem:
    """Environment + fabric + rack memory, without pulse hardware."""

    def __init__(self, node_count: int = 1,
                 params: Optional[SystemParams] = None,
                 policy: PlacementPolicy = PlacementPolicy.UNIFORM,
                 node_capacity: Optional[int] = None,
                 seed: int = 0):
        self.params = params if params is not None else DEFAULT_PARAMS
        self.env = Environment()
        self.fabric = Fabric(self.env, self.params.network, seed=seed)
        capacity = (node_capacity if node_capacity is not None
                    else self.params.memory.node_capacity_bytes)
        self.memory = GlobalMemory(node_count, capacity, policy)

    @property
    def node_count(self) -> int:
        return self.memory.node_count

    def _hold(self, resource: Resource, duration: float):
        grant = resource.request()
        yield grant
        try:
            yield self.env.timeout(duration)
        finally:
            resource.release(grant)


def workers_to_saturate(cpu: CpuParams, bandwidth_bytes_per_ns: float,
                        window_bytes: int = 256,
                        instructions_per_iteration: int = 20) -> int:
    """Minimum memory-node workers that saturate the bandwidth cap.

    Section 7: "we employ the minimum number of memory-node workers that
    can saturate the memory bandwidth" -- important for the energy
    comparison, where idle workers would burn power for nothing.  One
    worker streams ``window_bytes`` per iteration and each iteration
    costs a DRAM access plus its compute.
    """
    iteration_ns = (cpu.memory_access_ns(window_bytes)
                    + instructions_per_iteration * cpu.instruction_ns())
    per_worker = window_bytes / iteration_ns
    return max(1, math.ceil(bandwidth_bytes_per_ns / per_worker))
