"""Scaffolding shared by the baseline systems, and the backend protocol.

:class:`TraversalBackend` is the narrow structural interface every
compared system -- :class:`~repro.core.cluster.PulseCluster` and all
three baselines -- satisfies, so the bench driver (closed loop *and*
the open-loop Poisson generator) dispatches through one protocol
instead of per-system special cases.
"""

from __future__ import annotations

import math
from typing import (Any, Dict, Optional, Protocol, Sequence, Tuple,
                    runtime_checkable)

from repro.core.client import PendingTraversal
from repro.mem.allocator import PlacementPolicy
from repro.mem.node import GlobalMemory
from repro.obs.metrics import MetricsRegistry
from repro.params import DEFAULT_PARAMS, CpuParams, SystemParams
from repro.sim.engine import Environment
from repro.sim.network import Fabric
from repro.sim.resources import Resource
from repro.transport import TransportSession


@runtime_checkable
class TraversalBackend(Protocol):
    """What the bench driver needs from any compared system.

    ``submit`` is the async path (returns a
    :class:`~repro.core.client.PendingTraversal` immediately);
    ``traverse`` is the closed-loop process interface; the remaining
    methods are the measurement contract.  The protocol is structural:
    systems implement it by shape, no inheritance required.
    """

    env: Environment

    def submit(self, iterator: Any, *args) -> PendingTraversal:
        """Issue one traversal asynchronously."""
        ...

    def submit_many(self, requests: Sequence[Tuple[Any, tuple]]
                    ) -> "list[PendingTraversal]":
        """Issue a burst of traversals in one call (the batch seam).

        The primary submission path: systems with a batching front end
        (pulse's doorbell batcher feeding the lockstep batch machine)
        coalesce the whole burst; systems without one fall back to a
        scalar loop over :meth:`submit`.
        """
        ...

    def traverse(self, iterator: Any, *args):
        """Process: run one traversal; returns a TraversalResult."""
        ...

    def run_workload(self, operations: Sequence[Tuple[Any, tuple]],
                     concurrency: int = 8, warmup: int = 0):
        """Closed-loop drive of an operation list; returns WorkloadStats."""
        ...

    def begin_measurement(self) -> None:
        """Reset metrics/byte windows at the start of measurement."""
        ...

    def metrics_snapshot(self) -> Dict:
        """One JSON-able export of every metric in the system."""
        ...

    def reset_counters(self) -> None:
        """Zero memory-access counters and registry metrics."""
        ...

    def load_index(self, structure) -> int:
        """Bulk-prime any client-resident split index (may be a no-op)."""
        ...


class BaselineSystem:
    """Environment + fabric + rack memory, without pulse hardware.

    Every baseline shares the pulse cluster's observability contract: a
    single :class:`~repro.obs.metrics.MetricsRegistry` carrying the
    fabric's byte counters, the memory nodes' DRAM gauges, and the
    system-wide ``request.latency_ns`` histogram, so one ``snapshot()``
    compares all five systems.
    """

    def __init__(self, node_count: int = 1,
                 params: Optional[SystemParams] = None,
                 policy: PlacementPolicy = PlacementPolicy.UNIFORM,
                 node_capacity: Optional[int] = None,
                 seed: int = 0):
        self.params = params if params is not None else DEFAULT_PARAMS
        self.env = Environment()
        self.registry = MetricsRegistry(clock=lambda: self.env.now)
        self.fabric = Fabric(self.env, self.params.network, seed=seed,
                             registry=self.registry)
        capacity = (node_capacity if node_capacity is not None
                    else self.params.memory.node_capacity_bytes)
        self.memory = GlobalMemory(node_count, capacity, policy)
        for node in self.memory.nodes:
            node.attach_metrics(self.registry, clock=lambda: self.env.now)
        self._latency = self.registry.histogram("request.latency_ns")
        self._m_traversals = self.registry.counter(
            "client0.client.traversals")
        self._m_result_faults = self.registry.counter(
            "client0.client.faults")

    @property
    def node_count(self) -> int:
        return self.memory.node_count

    def make_session(self, name: str,
                     default_segments: int = 2) -> TransportSession:
        """One reliable-transport stack instance for a named endpoint.

        Baselines talk host-to-host (two wire segments through the
        implicit switch), and share the same per-hop ack/retransmit
        stack as pulse -- the transport is system-agnostic, so the
        goodput-vs-loss comparison isolates the *architectural*
        differences rather than who has a retry loop.
        """
        return TransportSession(self.env, self.fabric, name,
                                params=self.params.transport,
                                registry=self.registry,
                                default_segments=default_segments)

    # -- TraversalBackend protocol ------------------------------------------
    def submit(self, iterator, *args) -> PendingTraversal:
        """Issue one traversal asynchronously; returns immediately.

        Baselines have no doorbell batcher -- each submission simply runs
        its (generator) ``traverse`` as an independent process, which is
        exactly how these systems take concurrent load.
        """
        process = self.env.process(self.traverse(iterator, *args))
        return PendingTraversal(self.env, process)

    def submit_many(self, requests) -> list:
        """Default scalar fallback: one independent process per request.

        Baselines have no batching hardware, so a burst is just N
        concurrent submissions starting at the same simulated instant.
        """
        return [self.submit(iterator, *args)
                for iterator, args in requests]

    def traverse(self, iterator, *args):
        raise NotImplementedError  # each baseline implements its model

    def run_workload(self, operations, concurrency: int = 8,
                     warmup: int = 0):
        from repro.bench.driver import run_workload
        return run_workload(self, operations, concurrency, warmup)

    def begin_measurement(self) -> None:
        """Reset metrics + byte windows for the post-warmup window."""
        self.registry.reset()
        self.fabric.begin_window()

    def metrics_snapshot(self) -> dict:
        """One JSON-able export of every metric in the system."""
        return self.registry.snapshot()

    def reset_counters(self) -> None:
        self.memory.reset_counters()
        self.registry.reset()

    def load_index(self, structure) -> int:
        """Baselines have no client-resident split index: a no-op."""
        return 0

    def _record_result(self, result) -> None:
        """Account one finished traversal in the registry."""
        self._m_traversals.inc()
        if not result.ok:
            self._m_result_faults.inc()
        self._latency.record(result.latency_ns)
        self.completed.append(result)

    def _hold(self, resource: Resource, duration: float):
        grant = resource.request()
        yield grant
        try:
            yield self.env.timeout(duration)
        finally:
            resource.release(grant)


def workers_to_saturate(cpu: CpuParams, bandwidth_bytes_per_ns: float,
                        window_bytes: int = 256,
                        instructions_per_iteration: int = 20) -> int:
    """Minimum memory-node workers that saturate the bandwidth cap.

    Section 7: "we employ the minimum number of memory-node workers that
    can saturate the memory bandwidth" -- important for the energy
    comparison, where idle workers would burn power for nothing.  One
    worker streams ``window_bytes`` per iteration and each iteration
    costs a DRAM access plus its compute.
    """
    iteration_ns = (cpu.memory_access_ns(window_bytes)
                    + instructions_per_iteration * cpu.instruction_ns())
    per_worker = window_bytes / iteration_ns
    return max(1, math.ceil(bandwidth_bytes_per_ns / per_worker))
