"""RPC and RPC-W baselines: traversal offload to the memory-node CPU.

Represents the eRPC/DPDK class of systems (section 7): the client ships
the same compiled kernel, a worker on the memory node's CPU executes it
against local DRAM, and the result returns in one round trip.  RPC-W
(``wimpy=True``) emulates SmartNIC ARM-class cores by dropping the clock
to 1.0 GHz, exactly the paper's intel_pstate downscaling.

Distributed traversals: CPUs at one node cannot follow a pointer into
another node's DRAM; when the traversal leaves the node, the worker
returns a RUNNING response and the *client* re-issues the request to the
owning node (the extra round trip + client software that pulse's
in-switch re-routing removes; section 5, Fig 8's discussion).

Worker count defaults to the minimum saturating memory bandwidth
(section 7's energy-fairness rule).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.baselines.common import BaselineSystem, workers_to_saturate
from repro.core.iterator import FaultInfo, PulseIterator, TraversalResult
from repro.core.messages import RequestStatus, TraversalRequest
from repro.core.workspace import MachinePool
from repro.isa.instructions import ExecutionFault, wrap64
from repro.isa.interpreter import IterationOutcome
from repro.mem.translation import ProtectionFault
from repro.sim.network import Message
from repro.sim.resources import Resource

RPC_KIND = "rpc"


class RpcServerStats:
    """Registry-backed view of one RPC server's counters."""

    def __init__(self, registry=None, prefix: str = "rpc"):
        if registry is None:
            from repro.obs.metrics import MetricsRegistry
            registry = MetricsRegistry()
        self.registry = registry
        self.prefix = prefix

    def _counter(self, name: str):
        return self.registry.counter(f"{self.prefix}.{name}")

    @property
    def requests(self) -> int:
        return self._counter("requests").value

    @property
    def iterations(self) -> int:
        return self._counter("iterations").value

    @property
    def bytes_loaded(self) -> int:
        return self._counter("bytes_loaded").value

    @property
    def busy_ns(self) -> float:
        return self._counter("busy_ns").value


class _RpcServer:
    """One memory node's RPC service."""

    def __init__(self, system: "RpcSystem", node, workers: int):
        self.system = system
        self.env = system.env
        self.node = node
        self.session = system.make_session(node.name)
        self.endpoint = self.session.endpoint
        self.workers = Resource(self.env, capacity=workers)
        self.worker_count = workers
        #: serialized DRAM bandwidth share (the RDT cap of section 7)
        self.bandwidth_gate = Resource(self.env, capacity=1)
        #: eRPC is run-to-completion: each worker core handles its own
        #: rx/tx, so stack capacity scales with the worker pool
        self.stack = Resource(self.env, capacity=workers)
        registry = system.registry
        prefix = f"{node.name}.rpc"
        self.stats = RpcServerStats(registry, prefix)
        self._m_requests = registry.counter(f"{prefix}.requests")
        self._m_iterations = registry.counter(f"{prefix}.iterations")
        self._m_bytes = registry.counter(f"{prefix}.bytes_loaded")
        self._m_busy = registry.counter(f"{prefix}.busy_ns")
        # The worker cores reuse machine frames across requests, one
        # free frame per concurrent worker at most.
        self.machines = MachinePool(
            capacity=workers,
            reused=registry.counter(f"{prefix}.workspace.reused"),
            allocated=registry.counter(f"{prefix}.workspace.allocated"))
        self.env.process(self._serve_loop())

    def _serve_loop(self):
        while True:
            message = yield self.session.inbox.get()
            self.env.process(self._handle(message))

    def _handle(self, message: Message):
        system = self.system
        net = system.params.network
        request: TraversalRequest = message.payload

        yield from system._hold(self.stack, net.dpdk_stack_ns)
        grant = self.workers.request()
        yield grant
        started = self.env.now
        self._m_requests.inc()
        try:
            response = yield from self._execute(request)
        finally:
            self._m_busy.inc(self.env.now - started)
            self.workers.release(grant)
        yield from system._hold(self.stack, net.dpdk_stack_ns)
        self.session.send(message.src, RPC_KIND, response,
                          response.wire_bytes())

    def _execute(self, request: TraversalRequest):
        machine = self.machines.acquire(request.program)
        try:
            response = yield from self._run_request(request, machine)
            return response
        finally:
            self.machines.release(machine)

    def _run_request(self, request: TraversalRequest, machine):
        system = self.system
        cpu = system.cpu
        acc = system.params.accelerator  # iteration budget only
        program = request.program
        window_offset, window_size = program.load_window

        try:
            machine.reset(request.cur_ptr, request.scratch)
        except ExecutionFault as exc:
            return request.advanced(request.cur_ptr, request.scratch, 0,
                                    RequestStatus.FAULT, str(exc))

        iterations = 0
        while True:
            load_addr = wrap64(machine.cur_ptr + window_offset)
            entry = self.node.table.lookup(load_addr, window_size)
            if entry is None:
                owner = self.node.addrspace.node_of(load_addr)
                if owner is not None and owner != self.node.node_id:
                    response = request.advanced(
                        machine.cur_ptr, bytes(machine.scratch),
                        iterations, RequestStatus.RUNNING)
                    response.node_hops = request.node_hops + 1
                    return response
                return request.advanced(
                    machine.cur_ptr, bytes(machine.scratch), iterations,
                    RequestStatus.FAULT,
                    f"invalid pointer {load_addr:#x}")

            # DRAM access through the shared bandwidth cap.
            bw = system.params.memory.bandwidth_bytes_per_ns
            yield from system._hold(self.bandwidth_gate,
                                    window_size / bw)
            yield self.env.timeout(cpu.memory_access_ns(window_size))

            memory = self.node.memory

            def read(vaddr: int, size: int) -> bytes:
                return memory.read(entry.translate(vaddr), size)

            try:
                step = machine.run_iteration(read, self.node.write_virt)
            except (ExecutionFault, ProtectionFault) as exc:
                return request.advanced(
                    machine.cur_ptr, bytes(machine.scratch), iterations,
                    RequestStatus.FAULT, str(exc))

            iterations += 1
            self._m_iterations.inc()
            self._m_bytes.inc(step.load_bytes)
            yield self.env.timeout(
                step.instructions_executed * cpu.instruction_ns())

            if step.outcome is IterationOutcome.DONE:
                return request.advanced(
                    machine.cur_ptr, bytes(machine.scratch), iterations,
                    RequestStatus.DONE)
            if request.iterations_done + iterations >= acc.max_iterations:
                return request.advanced(
                    machine.cur_ptr, bytes(machine.scratch), iterations,
                    RequestStatus.ITER_LIMIT)


class RpcSystem(BaselineSystem):
    """The RPC / RPC-W baseline rack."""

    def __init__(self, node_count: int = 1, params=None, wimpy: bool = False,
                 workers_per_node: Optional[int] = None, seed: int = 0,
                 **kwargs):
        super().__init__(node_count, params, seed=seed, **kwargs)
        self.wimpy = wimpy
        self.cpu = self.params.wimpy if wimpy else self.params.cpu
        workers = (workers_per_node if workers_per_node is not None
                   else workers_to_saturate(
                       self.cpu,
                       self.params.memory.bandwidth_bytes_per_ns))
        self.workers_per_node = workers
        self.session = self.make_session("client0")
        self.client = self.session.endpoint
        self.client_stack = Resource(self.env, capacity=8)
        self.servers: List[_RpcServer] = [
            _RpcServer(self, node, workers)
            for node in self.memory.nodes
        ]
        self._waiters: Dict[tuple, object] = {}
        self._counter = 0
        self.completed: List[TraversalResult] = []
        self.env.process(self._client_rx_loop())

    @property
    def name(self) -> str:
        return "RPC-W" if self.wimpy else "RPC"

    # -- client ----------------------------------------------------------------
    def _client_rx_loop(self):
        while True:
            message = yield self.session.inbox.get()
            self.env.process(self._deliver(message))

    def _deliver(self, message: Message):
        yield from self._hold(self.client_stack,
                              self.params.network.dpdk_stack_ns)
        response: TraversalRequest = message.payload
        waiter = self._waiters.pop(response.request_id, None)
        if waiter is not None:
            waiter.succeed(response)

    def traverse(self, iterator: PulseIterator, *args):
        start = self.env.now
        cur_ptr, scratch = iterator.init(*args)
        self._counter += 1
        request = TraversalRequest(
            request_id=(0, self._counter),
            program=iterator.program,
            cur_ptr=cur_ptr,
            scratch=bytes(scratch),
            issued_at_ns=start,
        )
        while True:
            response = yield from self._send_to_owner(request)
            if response.status in (RequestStatus.DONE,
                                   RequestStatus.FAULT):
                break
            # RUNNING (left the node) or ITER_LIMIT: client continues it.
            self._counter += 1
            request = TraversalRequest(
                request_id=(0, self._counter),
                program=response.program,
                cur_ptr=response.cur_ptr,
                scratch=response.scratch,
                iterations_done=response.iterations_done,
                issued_at_ns=start,
                node_hops=response.node_hops,
            )

        faulted = response.status is RequestStatus.FAULT
        result = TraversalResult(
            value=None if faulted else iterator.finalize(response.scratch),
            iterations=response.iterations_done,
            latency_ns=self.env.now - start,
            offloaded=True,
            hops=response.node_hops,
            fault=(FaultInfo(reason=response.fault_reason, kind="remote")
                   if faulted else None),
        )
        self._record_result(result)
        return result

    def _send_to_owner(self, request: TraversalRequest):
        owner = self.memory.addrspace.node_of(request.cur_ptr)
        if owner is None:
            return request.advanced(
                request.cur_ptr, request.scratch, 0,
                RequestStatus.FAULT,
                f"client: unroutable pointer {request.cur_ptr:#x}")
        waiter = self.env.event()
        self._waiters[request.request_id] = waiter
        yield from self._hold(self.client_stack,
                              self.params.network.dpdk_stack_ns)
        self.session.send(f"mem{owner}", RPC_KIND, request,
                          request.wire_bytes())
        response = yield waiter
        return response

    # -- observability ------------------------------------------------------------
    def memory_bandwidth_utilization(self, duration_ns: float) -> float:
        if duration_ns <= 0:
            return 0.0
        cap = self.params.memory.bandwidth_bytes_per_ns
        per_node = [s.stats.bytes_loaded / duration_ns / cap
                    for s in self.servers]
        return sum(per_node) / len(per_node)

    def network_bandwidth_utilization(self, duration_ns: float) -> float:
        if duration_ns <= 0:
            return 0.0
        peak = max(self.client.tx_bytes, self.client.rx_bytes)
        return peak / (duration_ns * self.params.network.link_bytes_per_ns)
