"""The Cache-based baseline: Fastswap-style demand paging.

The traversal's kernel executes at the *CPU node*; every memory reference
goes through a client-side page cache (default 4 KB pages, 2 MB capacity
against the scaled-down datasets -- preserving the paper's 2 GB : hundreds
of GB ratio).  A miss is a page fault: kernel fault-handling software
(3.5 us-class, section 7.1's "software overheads of page swapping"), a
network round trip, and a 4 KB transfer.  This is why the approach is
simultaneously slow (pointer chasing has no locality, so nearly every hop
faults) and network-bound (4 KB moved per 256 B actually used -- Fig 6's
"network bandwidth identical to memory bandwidth").

Page faults are served by a small pool of fault handlers; concurrency
beyond the pool queues, modeling the paging path's limited parallelism.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional

from repro.baselines.common import BaselineSystem
from repro.core.iterator import FaultInfo, PulseIterator, TraversalResult
from repro.core.workspace import MachinePool
from repro.isa.instructions import ExecutionFault, wrap64
from repro.isa.interpreter import IterationOutcome
from repro.mem.translation import TranslationFault
from repro.sim.network import Message
from repro.sim.resources import Resource

PAGE_KIND = "page"


class PageCache:
    """Client-resident LRU page cache."""

    def __init__(self, capacity_pages: int):
        if capacity_pages < 1:
            raise ValueError("cache needs at least one page")
        self.capacity_pages = capacity_pages
        self._pages: "OrderedDict[int, bool]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __contains__(self, page: int) -> bool:
        return page in self._pages

    def access(self, page: int) -> bool:
        """Touch a page; returns True on hit."""
        if page in self._pages:
            self._pages.move_to_end(page)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def fill(self, page: int) -> None:
        if page in self._pages:
            return
        if len(self._pages) >= self.capacity_pages:
            self._pages.popitem(last=False)
            self.evictions += 1
        self._pages[page] = True

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class CacheSystem(BaselineSystem):
    """Demand-paging rack: dumb memory nodes, all smarts at the client."""

    def __init__(self, node_count: int = 1, params=None,
                 cache_bytes: Optional[int] = None,
                 fault_handlers: int = 4, seed: int = 0, **kwargs):
        super().__init__(node_count, params, seed=seed, **kwargs)
        mem = self.params.memory
        size = cache_bytes if cache_bytes is not None else mem.cache_bytes
        self.page_bytes = mem.page_bytes
        self.cache = PageCache(max(1, size // self.page_bytes))
        self.session = self.make_session("client0")
        self.client = self.session.endpoint
        #: kernel fault-handling contexts
        self.fault_unit = Resource(self.env, capacity=fault_handlers)
        self.cpu_unit = Resource(self.env, capacity=8)
        self.servers = [_PagingServer(self, node)
                        for node in self.memory.nodes]
        self.completed: List[TraversalResult] = []
        self._m_pages_fetched = self.registry.counter(
            "client0.cache.pages_fetched")
        self.registry.gauge("client0.cache.hit_ratio",
                            fn=lambda: self.cache.hit_ratio)
        self.registry.gauge("client0.cache.evictions",
                            fn=lambda: float(self.cache.evictions))
        # CPU-node execution frames, reused across traversals.
        self._machines = MachinePool(
            capacity=8,
            reused=self.registry.counter(
                "client0.cache.workspace.reused"),
            allocated=self.registry.counter(
                "client0.cache.workspace.allocated"))
        self.env.process(self._drain_client_inbox())

    @property
    def pages_fetched(self) -> int:
        return self._m_pages_fetched.value

    def _drain_client_inbox(self):
        # Page payloads are delivered to fault processes via events keyed
        # in the message; the inbox itself just needs draining.  The
        # transport session's dedup matters here: a duplicate delivery
        # would re-trigger an already-succeeded event.
        while True:
            message = yield self.session.inbox.get()
            waiter = message.payload
            waiter.succeed(message)

    # -- the traversal, executed at the CPU node ------------------------------
    def traverse(self, iterator: PulseIterator, *args):
        machine = self._machines.acquire(iterator.program)
        try:
            result = yield from self._traverse(iterator, machine, *args)
            return result
        finally:
            self._machines.release(machine)

    def _traverse(self, iterator: PulseIterator, machine, *args):
        start = self.env.now
        cur_ptr, scratch = iterator.init(*args)
        machine.reset(cur_ptr, scratch)
        window_offset, window_size = iterator.program.load_window
        cpu = self.params.cpu
        acc = self.params.accelerator

        iterations = 0
        fault = None
        while True:
            address = wrap64(machine.cur_ptr + window_offset)
            try:
                self.memory.read(address, window_size)  # validity check
            except TranslationFault as exc:
                fault = FaultInfo(reason=str(exc), kind="translation")
                break

            first_page = address // self.page_bytes
            last_page = (address + window_size - 1) // self.page_bytes
            for page in range(first_page, last_page + 1):
                yield from self._access_page(page)

            try:
                step = machine.run_iteration(self.memory.read,
                                             self.memory.write)
            except ExecutionFault as exc:
                fault = FaultInfo(reason=str(exc), kind="execution")
                break

            iterations += 1
            yield from self._hold(
                self.cpu_unit,
                step.instructions_executed * cpu.instruction_ns())
            if step.outcome is IterationOutcome.DONE:
                break
            if iterations >= 4 * acc.max_iterations:
                fault = FaultInfo(reason="runaway traversal",
                                  kind="budget")
                break

        result = TraversalResult(
            value=(None if fault is not None
                   else iterator.finalize(bytes(machine.scratch))),
            iterations=iterations,
            latency_ns=self.env.now - start,
            offloaded=False,
            fault=fault,
        )
        self._record_result(result)
        return result

    def _access_page(self, page: int):
        cpu = self.params.cpu
        if self.cache.access(page):
            # Local DRAM hit at the CPU node.
            yield self.env.timeout(cpu.dram_access_ns)
            return
        yield from self._fault(page)

    def _fault(self, page: int):
        """One demand-paging round trip for ``page``."""
        net = self.params.network
        grant = self.fault_unit.request()
        yield grant
        try:
            # Double check: another fault may have filled it while queued.
            if page in self.cache:
                return
            yield self.env.timeout(net.paging_stack_ns)
            address = page * self.page_bytes
            owner = self.memory.addrspace.node_of(address)
            owner_name = f"mem{owner}" if owner is not None else "mem0"
            waiter = self.env.event()
            self.session.send(owner_name, PAGE_KIND, (waiter, page), 128)
            yield waiter
            self.cache.fill(page)
            self._m_pages_fetched.inc()
        finally:
            self.fault_unit.release(grant)

    # -- observability -------------------------------------------------------
    def memory_bandwidth_utilization(self, duration_ns: float) -> float:
        if duration_ns <= 0:
            return 0.0
        cap = self.params.memory.bandwidth_bytes_per_ns
        per_node = [s.bytes_served / duration_ns / cap
                    for s in self.servers]
        return sum(per_node) / len(per_node)

    def network_bandwidth_utilization(self, duration_ns: float) -> float:
        if duration_ns <= 0:
            return 0.0
        peak = max(self.client.tx_bytes, self.client.rx_bytes)
        return peak / (duration_ns * self.params.network.link_bytes_per_ns)


class _PagingServer:
    """Memory node side of a page fetch: DRAM read + page send."""

    def __init__(self, system: CacheSystem, node):
        self.system = system
        self.env = system.env
        self.node = node
        self.session = system.make_session(node.name)
        self.endpoint = self.session.endpoint
        self.bandwidth_gate = Resource(self.env, capacity=1)
        self.bytes_served = 0
        self.env.process(self._serve_loop())

    def _serve_loop(self):
        while True:
            message = yield self.session.inbox.get()
            self.env.process(self._handle(message))

    def _handle(self, message: Message):
        system = self.system
        waiter, _page = message.payload
        page_bytes = system.page_bytes
        bw = system.params.memory.bandwidth_bytes_per_ns
        yield from system._hold(self.bandwidth_gate, page_bytes / bw)
        yield self.env.timeout(system.params.cpu.dram_access_ns)
        self.bytes_served += page_bytes
        self.session.send("client0", PAGE_KIND, waiter,
                          page_bytes + 128)
