"""Cache+RPC baseline: AIFM-style application-integrated far memory.

AIFM caches *objects* (not pages) at the CPU node within the data
structure library and falls back to remote execution when objects are
not local.  Two properties from the paper drive the model:

* its communication runs on a TCP-based DPDK stack, measurably slower
  than eRPC (section 7.1: "Cache+RPC incurs higher latency than RPC due
  to its TCP-based DPDK stack");
* data-structure-aware caching buys nothing for pointer chasing --
  uniform lookups over a working set vastly larger than the cache mean
  the traversal leaves cached objects almost immediately (section 7.1).

Model: the client walks locally while nodes are object-cache hits; on the
first miss the remaining traversal is shipped as an RPC over the TCP
stack.  With realistic cache:data ratios, nearly every request offloads
within a hop or two, which is exactly why the measured behaviour tracks
RPC plus stack overhead.

As in the paper, this system is evaluated on a single memory node with
the UPC workload only (AIFM supports neither complex data structures like
B+Trees nor distributed execution natively).
"""

from __future__ import annotations

from collections import OrderedDict

from repro.baselines.rpc import RpcSystem
from repro.core.iterator import FaultInfo, PulseIterator, TraversalResult
from repro.core.messages import RequestStatus, TraversalRequest
from repro.core.workspace import MachinePool
from repro.isa.instructions import ExecutionFault, wrap64
from repro.isa.interpreter import IterationOutcome
from repro.mem.translation import TranslationFault


class ObjectCache:
    """LRU cache of data-structure objects (keyed by address)."""

    def __init__(self, capacity_bytes: int, object_bytes: int):
        self.capacity_objects = max(1, capacity_bytes // object_bytes)
        self._objects: "OrderedDict[int, bool]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def access(self, address: int) -> bool:
        if address in self._objects:
            self._objects.move_to_end(address)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def fill(self, address: int) -> None:
        if address in self._objects:
            return
        if len(self._objects) >= self.capacity_objects:
            self._objects.popitem(last=False)
        self._objects[address] = True


class CacheRpcSystem(RpcSystem):
    """AIFM-like hybrid: object cache first, TCP-stack RPC fallback."""

    def __init__(self, params=None, cache_bytes=None, object_bytes=256,
                 seed: int = 0, **kwargs):
        super().__init__(node_count=1, params=params, wimpy=False,
                         seed=seed, **kwargs)
        mem = self.params.memory
        size = cache_bytes if cache_bytes is not None else mem.cache_bytes
        self.object_cache = ObjectCache(size, object_bytes)
        self._m_local_iterations = self.registry.counter(
            "client0.objcache.local_iterations")
        self._m_offloaded = self.registry.counter(
            "client0.objcache.offloaded_requests")
        # Client-side walk frames, reused across traversals.
        self._machines = MachinePool(
            capacity=8,
            reused=self.registry.counter(
                "client0.objcache.workspace.reused"),
            allocated=self.registry.counter(
                "client0.objcache.workspace.allocated"))

    @property
    def local_iterations(self) -> int:
        return self._m_local_iterations.value

    @property
    def offloaded_requests(self) -> int:
        return self._m_offloaded.value

    @property
    def name(self) -> str:
        return "Cache+RPC"

    def traverse(self, iterator: PulseIterator, *args):
        machine = self._machines.acquire(iterator.program)
        try:
            result = yield from self._traverse(iterator, machine, *args)
            return result
        finally:
            self._machines.release(machine)

    def _traverse(self, iterator: PulseIterator, machine, *args):
        start = self.env.now
        cpu = self.params.cpu
        net = self.params.network
        cur_ptr, scratch = iterator.init(*args)
        machine.reset(cur_ptr, scratch)
        window_offset, window_size = iterator.program.load_window

        # Phase 1: walk cached objects locally.
        iterations = 0
        fault = None
        done = False
        while True:
            address = wrap64(machine.cur_ptr + window_offset)
            if not self.object_cache.access(address):
                break  # first non-resident object: offload the rest
            yield self.env.timeout(cpu.memory_access_ns(window_size))
            try:
                step = machine.run_iteration(self.memory.read,
                                             self.memory.write)
            except ExecutionFault as exc:
                fault = FaultInfo(reason=str(exc), kind="execution")
                break
            except TranslationFault as exc:
                fault = FaultInfo(reason=str(exc), kind="translation")
                break
            iterations += 1
            self._m_local_iterations.inc()
            yield self.env.timeout(
                step.instructions_executed * cpu.instruction_ns())
            if step.outcome is IterationOutcome.DONE:
                done = True
                break

        # Phase 2: RPC the remainder over the TCP-flavored stack.
        if not done and fault is None:
            self._m_offloaded.inc()
            self._counter += 1
            request = TraversalRequest(
                request_id=(0, self._counter),
                program=iterator.program,
                cur_ptr=machine.cur_ptr,
                scratch=bytes(machine.scratch),
                iterations_done=iterations,
                issued_at_ns=start,
            )
            # TCP stack premium over the DPDK stack, both directions.
            tcp_premium = net.tcp_stack_ns - net.dpdk_stack_ns
            yield self.env.timeout(max(0.0, tcp_premium))
            response = yield from self._send_to_owner(request)
            yield self.env.timeout(max(0.0, tcp_premium))
            while response.status is RequestStatus.ITER_LIMIT:
                self._counter += 1
                request = TraversalRequest(
                    request_id=(0, self._counter),
                    program=response.program,
                    cur_ptr=response.cur_ptr,
                    scratch=response.scratch,
                    iterations_done=response.iterations_done,
                    issued_at_ns=start,
                )
                response = yield from self._send_to_owner(request)
            if response.status is RequestStatus.FAULT:
                fault = FaultInfo(reason=response.fault_reason,
                                  kind="remote")
            iterations = response.iterations_done
            final_scratch = response.scratch
            # The traversed chain becomes cache-resident (AIFM swaps the
            # hot objects in); uniform access means it rarely helps.
            self.object_cache.fill(wrap64(machine.cur_ptr
                                          + window_offset))
        else:
            final_scratch = bytes(machine.scratch)

        result = TraversalResult(
            value=(None if fault is not None
                   else iterator.finalize(final_scratch)),
            iterations=iterations,
            latency_ns=self.env.now - start,
            offloaded=not done,
            fault=fault,
        )
        self._record_result(result)
        return result
