"""Coordinator side of sharded execution: conservative lookahead sync.

Determinism argument (the sharded differential suite pins it):

* The cluster is built fully in one process, then forked, so every
  process starts from an identical replica.  *Ownership* decides which
  process delivers fabric frames to an endpoint: the coordinator owns
  the clients and the switch, worker ``w`` owns ``mem{i}`` for its
  assigned nodes.  Non-owned components simply never receive traffic
  and stay inert (blocked on their inboxes).
* All processes advance in windows ``[start, end)`` with
  ``end = t_min + L``, where ``t_min`` is the earliest pending event
  anywhere and ``L`` is the *lookahead*: the minimum cross-process
  propagation latency (one wire segment plus switch processing --
  every session sends with ``segments >= 1``).  Any frame transmitted
  inside a window is transmitted at time ``>= t_min``, so it arrives at
  ``>= t_min + L = end``: never inside the window that produced it.
  Frames are therefore always delivered to the owning process *before*
  it runs the window containing their arrival.
* Concurrent exports are merged in ``(arrival time, source process,
  export sequence)`` order before injection, so the receiver's event
  queue is populated identically run-to-run -- and identically to the
  in-process cluster, where the fabric's delivery processes schedule
  arrivals in the same time/priority/sequence order.

Windows are adaptive: when every process is idle until some far-off
timer, the window jumps straight to ``t_min + L``, so synchronization
cost scales with event density, not simulated time.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Callable, Dict, List, Optional, Sequence

from repro.shard.transport import (ADVANCE, DONE, ERROR, SNAPSHOT, STOP,
                                   STOPPED, WireFrame)
from repro.sim.engine import Event

#: metric names accumulated across processes rather than owned by one
SUMMED_COUNTERS = ("net.delivered_messages", "net.dropped_messages")
#: hotness gauges: each process's tracker sees only the touches its own
#: accelerators execute, so the per-process values are disjoint shares
SUMMED_GAUGE_PREFIX = "placement.hot."
MAXED_GAUGES = ("placement.hot.peak",)


class ShardError(RuntimeError):
    """Misuse of (or a failure inside) the sharded runtime."""


def resolve_workers(explicit: Optional[int] = None) -> int:
    """Worker count: explicit argument, else ``PULSE_WORKERS``, else 0."""
    if explicit is not None:
        return int(explicit)
    return int(os.environ.get("PULSE_WORKERS", "0") or 0)


def lookahead_ns(params) -> float:
    """The conservative window size: minimum cross-process link latency.

    Every cross-boundary send covers at least one wire segment plus the
    switch processing stage (jitter and extra latency only add), so no
    frame transmitted at ``t`` can arrive before ``t + L``.
    """
    lookahead = float(params.network.segment_ns
                      + params.network.switch_process_ns)
    if lookahead <= 0:
        raise ShardError(
            "sharded execution needs a positive minimum link latency "
            f"(segment_ns + switch_process_ns = {lookahead})")
    return lookahead


class ShardRouter:
    """Captures cross-boundary fabric traffic inside one process."""

    def __init__(self, is_local: Callable[[str], bool], src_process: int):
        self._is_local = is_local
        self.src_process = src_process
        self._out: List[WireFrame] = []
        self._seq = 0

    def owns(self, name: str) -> bool:
        return self._is_local(name)

    def export(self, message, arrival_ns: float) -> None:
        self._out.append(WireFrame(message, arrival_ns, self._seq,
                                   self.src_process))
        self._seq += 1

    def drain(self) -> List[WireFrame]:
        out, self._out = self._out, []
        return out


def apply_ctl(cluster, ctl, activation_ns: float,
              done_event: Optional[Event] = None) -> None:
    """Apply one broadcast control record at ``activation_ns``.

    Control verbs (live migration, measurement-window start) must take
    effect at the *same* simulated instant in every replica; the
    coordinator stamps each record with the start of the window it
    ships with, and both sides schedule the action there.
    """
    kind, args = ctl
    env = cluster.env

    def fire(_event, kind=kind, args=args):
        if kind == "migrate":
            process = env.process(
                cluster.placement.engine.migrate(*args))
            if done_event is not None:
                process.callbacks.append(
                    lambda p: done_event.succeed(p._value) if p._ok
                    else done_event.fail(p._value))
        elif kind == "begin_measurement":
            cluster._begin_measurement_local()
        elif kind == "kill_node":
            cluster._kill_node_local(*args)
        else:
            raise ShardError(f"unknown control record {kind!r}")

    event = Event(env)
    event._ok = True
    event.callbacks.append(fire)
    env.schedule_at(event, activation_ns)


def merge_snapshots(base: Dict, worker_snapshots: Dict[int, Dict],
                    assignment: Dict[int, List[int]]) -> Dict:
    """Merge per-process registry snapshots into one rack-wide view.

    Ownership by name prefix: ``mem{i}.*`` and ``net.mem{i}.*`` come
    from the worker serving node ``i`` (the coordinator's replicas of
    those metrics never move past zero); fabric-global delivery
    counters are summed across processes; everything else -- clients,
    switch, placement, request histograms -- is coordinator-owned.
    """
    merged = {
        "now_ns": base.get("now_ns", 0.0),
        "counters": dict(base.get("counters", {})),
        "gauges": dict(base.get("gauges", {})),
        "histograms": dict(base.get("histograms", {})),
    }
    for worker, snapshot in sorted(worker_snapshots.items()):
        prefixes = tuple(f"mem{i}." for i in assignment[worker])
        prefixes += tuple(f"net.mem{i}." for i in assignment[worker])
        for section in ("counters", "gauges", "histograms"):
            for name, value in snapshot.get(section, {}).items():
                if name.startswith(prefixes):
                    merged[section][name] = value
        for name in SUMMED_COUNTERS:
            merged["counters"][name] = (
                merged["counters"].get(name, 0)
                + snapshot.get("counters", {}).get(name, 0))
        for name, value in snapshot.get("gauges", {}).items():
            if name in MAXED_GAUGES:
                merged["gauges"][name] = max(
                    merged["gauges"].get(name, 0.0), value)
            elif name.startswith(SUMMED_GAUGE_PREFIX):
                merged["gauges"][name] = (
                    merged["gauges"].get(name, 0.0) + value)
    delivered = merged["counters"].get("net.delivered_messages", 0)
    dropped = merged["counters"].get("net.dropped_messages", 0)
    offered = delivered + dropped
    if "net.delivery_ratio" in merged["gauges"]:
        merged["gauges"]["net.delivery_ratio"] = (
            delivered / offered if offered else 1.0)
    return merged


class ShardedRuntime:
    """Spawner: forks one worker process per shard and runs the barrier.

    Usage::

        cluster = PulseCluster(node_count=4, seed=7)
        ...build structures...                  # before the fork
        runtime = cluster.shard(workers=4)      # forks + installs hooks
        stats = run_open_loop(cluster, ops, 8e6)  # transparently sharded
        snapshot = cluster.metrics_snapshot()   # merged rack-wide view
        runtime.stop()

    ``replicated`` holds process factories (``factory(cluster) ->
    generator``) started identically in *every* replica right after the
    fork -- the mechanism the migration-storm differential uses to run
    one deterministic storm schedule in all processes at once.
    """

    def __init__(self, cluster, workers: Optional[int] = None,
                 replicated: Sequence[Callable] = ()):
        self.cluster = cluster
        count = resolve_workers(workers)
        if count < 1:
            raise ShardError(f"need at least one worker (got {count})")
        if "fork" not in multiprocessing.get_all_start_methods():
            raise ShardError(
                "sharded execution needs the fork start method "
                "(replicas are copy-on-write images of the built cluster)")
        if cluster.params.network.drop_probability > 0.0:
            raise ShardError(
                "the fabric-wide drop_probability knob shares one RNG "
                "across all links and cannot shard deterministically; "
                "use per-link LinkProfiles instead")
        node_ids = [node.node_id for node in cluster.memory.nodes]
        self.workers = min(count, len(node_ids))
        #: worker index -> node ids it serves (round-robin)
        self.assignment: Dict[int, List[int]] = {
            w: [i for i in node_ids if i % self.workers == w]
            for w in range(self.workers)
        }
        self.lookahead = lookahead_ns(cluster.params)
        self.replicated = list(replicated)
        self.replicated_procs: List = []
        self._owner: Dict[str, int] = {
            f"mem{i}": w
            for w, nodes in self.assignment.items() for i in nodes
        }
        self._conns: Dict[int, object] = {}
        self._procs: Dict[int, object] = {}
        self._peeks: Dict[int, float] = {}
        self._pending: Dict[int, List[WireFrame]] = {}
        self._ctls: List = []
        self._round_open = False
        self._last_end: float = 0.0
        self._router: Optional[ShardRouter] = None
        self._final_snapshots: Dict[int, Dict] = {}
        self._started = False
        self._stopped = False
        self._owner_pid = os.getpid()

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> "ShardedRuntime":
        if self._started:
            raise ShardError("runtime already started")
        from repro.shard.worker import worker_main
        cluster = self.cluster
        env = cluster.env
        ctx = multiprocessing.get_context("fork")
        for w in range(self.workers):
            parent, child = ctx.Pipe()
            process = ctx.Process(
                target=worker_main,
                args=(child, cluster, self.assignment[w], w,
                      cluster.fabric.seed, self.replicated),
                daemon=True)
            process.start()
            child.close()
            self._conns[w] = parent
            self._procs[w] = process
            self._pending[w] = []
            # Conservative first-round estimate: a worker may have
            # replicated-process events as early as "now".
            self._peeks[w] = env.now
        # Coordinator-side wiring happens only after every fork, so the
        # worker replicas carry no router or window hook.
        owned_by_workers = frozenset(self._owner)
        self._router = ShardRouter(
            lambda name: name not in owned_by_workers, -1)
        cluster.fabric.shard_router = self._router
        self.replicated_procs = [
            env.process(factory(cluster)) for factory in self.replicated
        ]
        self._last_end = env.now
        env.set_window_hook(self._window_hook)
        self._started = True
        return self

    def stop(self) -> None:
        """Collect final snapshots, join the workers, unhook the env."""
        if not self._started or self._stopped:
            return
        self._stopped = True
        try:
            if self._round_open:
                self._collect_round()
            for w, conn in sorted(self._conns.items()):
                conn.send((STOP, self.cluster.env.now))
                reply = conn.recv()
                if reply[0] == ERROR:
                    raise ShardError(
                        f"worker {w} failed during stop:\n{reply[1]}")
                self._final_snapshots[w] = reply[1]
        finally:
            for conn in self._conns.values():
                try:
                    conn.close()
                except OSError:
                    pass
            for process in self._procs.values():
                process.join(timeout=5)
                if process.is_alive():
                    process.terminate()
                    process.join(timeout=5)
            self.cluster.env.clear_window_hook()
            self.cluster.fabric.shard_router = None

    def __enter__(self) -> "ShardedRuntime":
        if not self._started:
            self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    def __del__(self):
        # Forked workers inherit this object (later forks inherit the
        # Process handles of earlier ones); only the creating process
        # may reap them -- is_alive() asserts on the parent pid.
        if os.getpid() != getattr(self, "_owner_pid", os.getpid()):
            return
        for process in getattr(self, "_procs", {}).values():
            if process.is_alive():
                process.terminate()

    # -- control broadcast -------------------------------------------------
    def broadcast_ctl(self, kind: str, args: tuple,
                      done_event: Optional[Event] = None) -> None:
        """Queue a control record for every replica's next window."""
        if self._stopped:
            raise ShardError("runtime already stopped")
        self._ctls.append(((kind, args), done_event))

    def migrate(self, virt_start: int, virt_end: int, dst_node: int):
        """Broadcast a live migration; returns an event firing when the
        coordinator replica's copy of the migration completes."""
        done = self.cluster.env.event()
        self.broadcast_ctl("migrate", (virt_start, virt_end, dst_node),
                           done)
        return done

    def kill_node(self, node_id: int) -> None:
        """Broadcast a node crash; applied at every replica's next window.

        The kill lands at the same simulated instant everywhere, so the
        recovery schedule (and every durability counter it drives) stays
        byte-identical with the in-process run.
        """
        self.broadcast_ctl("kill_node", (node_id,))

    def begin_measurement(self) -> None:
        """Reset worker metrics at the next window start.

        The coordinator resets immediately (exactly like the in-process
        cluster); workers reset at the start of the next window -- with
        a warmup of zero that is still before any measured traffic
        reaches them, so merged snapshots match the in-process run.
        """
        self.broadcast_ctl("begin_measurement", ())

    # -- observability -----------------------------------------------------
    def metrics_snapshot(self) -> Dict:
        base = self.cluster.registry.snapshot()
        snapshots = self._final_snapshots or self._query_snapshots()
        return merge_snapshots(base, snapshots, self.assignment)

    def _query_snapshots(self) -> Dict[int, Dict]:
        if self._round_open:
            self._collect_round()
        out = {}
        for w, conn in sorted(self._conns.items()):
            conn.send((SNAPSHOT, self.cluster.env.now))
            reply = conn.recv()
            if reply[0] == ERROR:
                raise ShardError(f"worker {w} failed:\n{reply[1]}")
            out[w] = reply[1]
        return out

    # -- the window barrier --------------------------------------------------
    def _window_hook(self, limit: float = float("inf")) -> bool:
        """One sync round; called by the env when it needs the next window.

        Rounds are asynchronous: the hook ships ``ADVANCE`` and returns
        immediately, so the coordinator simulates window ``k`` while the
        workers simulate it too; the *next* hook call collects their
        ``DONE`` replies first.  Returns False when no process has an
        event at time <= ``limit``.
        """
        env = self.cluster.env
        self._route(self._router.drain())
        if self._round_open:
            self._collect_round()
        t_min = min(env.peek(),
                    min(self._peeks.values(), default=float("inf")),
                    min((frame.arrival_ns
                         for frames in self._pending.values()
                         for frame in frames), default=float("inf")))
        if t_min == float("inf") or t_min > limit:
            return False
        end = t_min + self.lookahead
        activation = self._last_end
        ctls, self._ctls = self._ctls, []
        wire_ctls = [record for record, _done in ctls]
        for w, conn in sorted(self._conns.items()):
            frames = sorted(self._pending[w], key=WireFrame.sort_key)
            self._pending[w] = []
            conn.send((ADVANCE, end, frames, wire_ctls, activation))
        for record, done in ctls:
            apply_ctl(self.cluster, record, activation, done)
        self._round_open = True
        self._last_end = end
        env.advance_window(end)
        return True

    def _collect_round(self) -> None:
        frames: List[WireFrame] = []
        for w, conn in sorted(self._conns.items()):
            try:
                reply = conn.recv()
            except EOFError:
                raise ShardError(f"worker {w} exited mid-window") from None
            if reply[0] == ERROR:
                raise ShardError(f"worker {w} failed:\n{reply[1]}")
            if reply[0] != DONE:
                raise ShardError(
                    f"unexpected reply {reply[0]!r} from worker {w}")
            frames.extend(reply[1])
            self._peeks[w] = reply[2]
        self._round_open = False
        self._route(frames)

    def _route(self, frames: List[WireFrame]) -> None:
        """Merge exports deterministically and hand them to their owners."""
        local: List[WireFrame] = []
        for frame in frames:
            owner = self._owner.get(frame.message.dst)
            if owner is None:
                local.append(frame)
            else:
                self._pending[owner].append(frame)
        for frame in sorted(local, key=WireFrame.sort_key):
            self.cluster.fabric.inject(frame.message, frame.arrival_ns)
