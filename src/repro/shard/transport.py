"""Pipe wire protocol between the coordinator and its shard workers.

Everything crossing a process boundary is one of a handful of tagged
tuples, pickled by ``multiprocessing.Connection``.  Cross-shard fabric
traffic travels as :class:`WireFrame` records: the original
:class:`~repro.sim.network.Message` (reliable-transport ``Segment``
payloads included, so the :class:`~repro.core.messages.TransportHeader`
wire format is reused verbatim) plus the absolute arrival time the
sending shard computed at tx-end.  Requests inside one frame share
their :class:`~repro.isa.program.Program` object, which pickle
memoizes, so a 64-request doorbell batch ships its kernel once.

Coordinator -> worker::

    (ADVANCE, window_end, frames, ctls, activation_ns)
    (SNAPSHOT, at_ns)
    (STOP, at_ns)

Worker -> coordinator::

    (DONE, exported_frames, next_event_time)
    (SNAPSHOT, registry_snapshot)
    (STOPPED, registry_snapshot)
    (ERROR, traceback_text)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.network import Message

#: coordinator -> worker: inject ``frames``/apply ``ctls`` (at
#: ``activation_ns``), then run every event strictly before
#: ``window_end`` and reply with a DONE record
ADVANCE = "advance"
#: worker -> coordinator: the window finished; carries exported frames
#: and the worker's next pending event time (``inf`` when idle)
DONE = "done"
#: coordinator -> worker: reply with a registry snapshot (callback
#: gauges evaluated at the coordinator clock ``at_ns``), keep running
SNAPSHOT = "snapshot"
#: coordinator -> worker: reply with a final snapshot and exit
STOP = "stop"
STOPPED = "stopped"
#: worker -> coordinator: the worker raised; payload is the traceback
ERROR = "error"


@dataclass
class WireFrame:
    """One cross-shard fabric message, resolved at tx-end.

    ``seq`` is the exporting process's running export counter and
    ``src_process`` its shard id (-1 for the coordinator); together with
    ``arrival_ns`` they give the total order ``(time, src, seq)`` the
    coordinator merges concurrent exports in, so injection order -- and
    therefore the receiver's event sequence -- is deterministic.
    """

    message: Message
    arrival_ns: float
    seq: int
    src_process: int

    def sort_key(self):
        return (self.arrival_ns, self.src_process, self.seq)
