"""Worker side of sharded execution: one process per memory-node shard.

Each worker is a copy-on-write fork of the fully built cluster.  It
owns the ``mem{i}`` endpoints for its assigned nodes (accelerator,
memory pipeline, allocator, batch-machine pool) and stays inert for
everything else -- the coordinator never routes frames to non-owned
inboxes, so those replicas simply block forever.  The main loop is
purely reactive: inject the frames and control records that arrived
with an ``ADVANCE``, run every local event strictly before the window
end, then report exports and the next pending event time back.
"""

from __future__ import annotations

import random
import traceback

from repro.shard.runtime import ShardError, ShardRouter, apply_ctl
from repro.shard.transport import (ADVANCE, DONE, ERROR, SNAPSHOT, STOP,
                                   STOPPED)


def seed_worker_rngs(cluster, owned_nodes, worker_index: int,
                     seed) -> None:
    """Reseed this process's RNGs from ``(cluster seed, node ids)``.

    The forked replica inherits the parent's global ``random`` state;
    without reseeding, two workers would share one stream and any
    worker-local draw would depend on fork timing.  Each owned
    accelerator also gets a dedicated ``shard_rng`` handle so future
    node-local randomness has a stable, per-node stream.
    """
    random.seed(f"{seed}:shard:{worker_index}:{tuple(owned_nodes)}")
    owned = {f"mem{i}": i for i in owned_nodes}
    for accelerator in cluster.accelerators:
        node_id = owned.get(accelerator.name)
        if node_id is not None:
            accelerator.shard_rng = random.Random(
                f"{seed}:shard-node:{node_id}")


def _snapshot_at(cluster, at_ns: float) -> dict:
    """Snapshot the local registry with gauges read at the rack clock.

    A worker's clock rests wherever its last window left it, which can
    sit past the coordinator's stop time; time-dependent callback
    gauges (bandwidth windows, hotness decay) must be evaluated at the
    coordinator's ``now`` or the merged snapshot would mix clocks.
    """
    env = cluster.env
    saved, env._now = env._now, at_ns
    try:
        return cluster.registry.snapshot()
    finally:
        env._now = saved


def worker_main(conn, cluster, owned_nodes, worker_index: int, seed,
                replicated) -> None:
    """Entry point run inside each forked worker process."""
    try:
        seed_worker_rngs(cluster, owned_nodes, worker_index, seed)
        env = cluster.env
        owned_names = frozenset(f"mem{i}" for i in owned_nodes)
        router = ShardRouter(lambda name: name in owned_names,
                             worker_index)
        cluster.fabric.shard_router = router
        cluster.runtime = None  # replicas never re-broadcast controls
        for factory in replicated:
            env.process(factory(cluster))
        while True:
            try:
                request = conn.recv()
            except EOFError:
                return
            tag = request[0]
            if tag == ADVANCE:
                _, window_end, frames, ctls, activation_ns = request
                for ctl in ctls:
                    apply_ctl(cluster, ctl, activation_ns)
                for frame in frames:
                    cluster.fabric.inject(frame.message, frame.arrival_ns)
                env.run_window(window_end)
                conn.send((DONE, router.drain(), env.peek()))
            elif tag == SNAPSHOT:
                conn.send((SNAPSHOT, _snapshot_at(cluster, request[1])))
            elif tag == STOP:
                conn.send((STOPPED, _snapshot_at(cluster, request[1])))
                return
            else:
                raise ShardError(f"unknown request tag {tag!r}")
    except BaseException:
        try:
            conn.send((ERROR, traceback.format_exc()))
        except Exception:
            pass
    finally:
        try:
            conn.close()
        except Exception:
            pass
