"""Sharded multiprocess execution: one worker process per memory node.

The single-process cluster serializes every memory node's batch-machine
numpy passes on one core.  This package splits the rack across OS
processes following the spawner/worker idiom: the *coordinator* process
keeps the client(s), the switch, placement, and the authoritative
discrete-event clock; each *worker* process serves one or more memory
nodes (accelerator + memory pipeline + allocator + ``BatchMachinePool``).
Transport frames cross process boundaries over ``multiprocessing``
pipes; determinism is preserved by conservative lookahead
synchronization (see :mod:`repro.shard.runtime`), so a sharded run is
event-for-event identical to the in-process cluster.
"""

from repro.shard.runtime import (ShardedRuntime, ShardError, lookahead_ns,
                                 merge_snapshots, resolve_workers)
from repro.shard.transport import WireFrame

__all__ = [
    "ShardedRuntime",
    "ShardError",
    "WireFrame",
    "lookahead_ns",
    "merge_snapshots",
    "resolve_workers",
]
