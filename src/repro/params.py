"""System-wide timing, sizing, and power parameters.

Every latency, bandwidth, and power constant used by the simulation lives
here, calibrated against the numbers the paper reports:

* Fig 9 gives the accelerator-internal constants directly: 430 ns network
  stack processing per direction, 4 ns scheduler dispatch, ~120 ns memory
  pipeline (translation + protection + 256 B load), ~7 ns logic per
  hash-table iteration (=> ~1 ns per ISA instruction at the FPGA clock).
* Section 7 fixes the environment: 100 Gbps NICs, 25 GB/s per-node memory
  bandwidth cap (Intel RDT, matching the FPGA board), 2 GB caches, Xeon
  Gold 6240 (2.6 GHz) CPU nodes, wimpy cores emulated at 1.0 GHz.
* Section 7.1 notes DPDK/eRPC stacks for RPC systems, a slower TCP-based
  DPDK stack for Cache+RPC (AIFM), and a kernel paging path for the
  Cache-based system (Fastswap) that cannot saturate the network.
* Section 7.1 (distributed) notes 5-10 us added latency when a traversal
  hops between memory nodes through the CPU node.

Times are **nanoseconds**, sizes **bytes**, bandwidths **bytes/ns**
(1 GB/s == 1e9 B/s == 1.0 B/ns is *not* true: 1 GB/s = 1 byte per ns is
exactly right only for 1e9 B/s; we use decimal GB throughout, so
25 GB/s == 25 B/ns), power **watts**, energy **nanojoules**.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict

KB = 1024
MB = 1024 * KB
GB = 1024 * MB

US = 1_000.0  # nanoseconds per microsecond
MS = 1_000_000.0

#: bytes per nanosecond for a decimal gigabyte-per-second figure
def gbps_to_bytes_per_ns(gbits_per_s: float) -> float:
    """Convert a link rate in Gbit/s to bytes/ns."""
    return gbits_per_s * 1e9 / 8 / 1e9


def gBps_to_bytes_per_ns(gbytes_per_s: float) -> float:
    """Convert a memory rate in GB/s (decimal) to bytes/ns."""
    return gbytes_per_s * 1e9 / 1e9


@dataclass(frozen=True)
class AcceleratorParams:
    """Timing and shape of one pulse accelerator (one per memory node).

    The memory pipeline is modeled with separate *occupancy* (how long the
    pipeline/channel is held per load -- sets throughput) and *latency
    tail* (DRAM access latency overlapped across outstanding loads).  This
    reconciles two numbers the paper reports: a solo load takes ~120 ns
    through translation + protection + fetch (Fig 9), while two cores can
    still saturate 25 GB/s (Supp Fig 1b) -- impossible if each 256 B load
    exclusively held the channel for 120 ns.  ``workspaces_per_core``
    models the outstanding transactions the burst/AXI machinery sustains
    (calibrated to Supp Fig 1b); the paper's 2*eta staggered-workspace
    argument (Fig 3) governs the *logic* pipeline multiplexing.
    """

    #: network stack processing per direction (Fig 9: 430 ns)
    netstack_ns: float = 430.0
    #: the hardware network stack is pipelined at line rate: per-packet
    #: *occupancy* is a few cycles even though the parse/deparse
    #: *latency* is 430 ns
    netstack_occupancy_ns: float = 10.0
    #: scheduler parse/dispatch (Fig 9: 4 ns)
    scheduler_dispatch_ns: float = 4.0
    #: memory pipeline occupancy: TCAM translation + protection check
    translation_occupancy_ns: float = 2.0
    #: per-core memory channel rate (burst transfers; U250 DDR4 channel)
    channel_bytes_per_ns: float = 14.5
    #: DRAM access latency tail (overlapped across outstanding loads)
    dram_latency_ns: float = 90.0
    #: logic pipeline cost per ISA instruction (~1 GHz FPGA clock)
    instruction_ns: float = 1.0
    #: the logic datapath is itself pipelined: a new iteration can enter
    #: every t_c/depth while earlier ones drain (latency t_c is still
    #: charged to the request).  This realizes section 4.2.2's goal that
    #: the logic side never bottlenecks the memory pipeline, which Fig 6
    #: requires even for eta~0.8 workloads.
    logic_pipeline_depth: int = 8
    #: cores per accelerator (paper: 2, one per memory channel)
    cores: int = 2
    #: eta threshold: max allowed t_c / t_d ratio for offload (paper: 1)
    eta_max: float = 1.0
    #: logic pipelines per core (the paper's eta; eta_max=1 -> 1)
    logic_pipelines_per_core: int = 1
    #: concurrent iterator workspaces per core (>= 2*eta per Fig 3;
    #: default sized so the memory pipeline saturates even when the
    #: per-iteration latency chain is ~15x the pipeline occupancy)
    workspaces_per_core: int = 16
    #: maximum bytes in the aggregated per-iteration LOAD (section 4.1)
    max_load_bytes: int = 256
    #: scratch pad size (section 3.1 default: 4 KB)
    scratchpad_bytes: int = 4 * KB
    #: per-request iteration cap before forced RETURN (section 3.1)
    max_iterations: int = 4096
    #: per-core bound on requests queued for a workspace; arrivals past
    #: the bound are NACKed with ``RequestStatus.RETRY`` instead of
    #: growing an unbounded on-chip queue (the accelerator's SRAM for
    #: parked requests is finite), pushing overload back to the clients
    admission_queue_depth: int = 64
    #: entries in each core's translation cache (the TLB in front of the
    #: range TCAM): pointer traversals exhibit strong range locality --
    #: successive iterations usually stay within one allocation range --
    #: so a handful of cached entries absorbs nearly all lookups
    tlb_entries_per_core: int = 8
    #: lanes per batch machine: how many workspace frames one core steps
    #: in lockstep through a shared kernel when a doorbell batch lands
    #: (the SIMT batch tier).  ``PULSE_BATCH`` overrides at runtime;
    #: 0 or 1 forces the scalar compiled tier
    batch_lanes: int = 32

    def occupancy_ns(self, size_bytes: int) -> float:
        """Memory-pipeline hold time per load (sets peak throughput)."""
        return (self.translation_occupancy_ns
                + size_bytes / self.channel_bytes_per_ns)

    def memory_access_ns(self, size_bytes: int) -> float:
        """t_d: end-to-end memory pipeline time for a solo load (Fig 9)."""
        return self.occupancy_ns(size_bytes) + self.dram_latency_ns


@dataclass(frozen=True)
class CpuParams:
    """Execution model for CPU-side code (client or RPC worker)."""

    clock_ghz: float = 2.6
    #: random DRAM access latency at the memory node CPU
    dram_access_ns: float = 100.0
    #: additional per-byte cost of touching loaded data
    dram_byte_ns: float = 0.05

    def instruction_ns(self) -> float:
        return 1.0 / self.clock_ghz

    def memory_access_ns(self, size_bytes: int) -> float:
        return self.dram_access_ns + self.dram_byte_ns * size_bytes


@dataclass(frozen=True)
class NetworkParams:
    """Fabric timing: stacks, wire, and switch."""

    #: one-way wire propagation per segment (host<->switch, cables + PHY)
    segment_ns: float = 425.0
    #: switch pipeline processing per packet (Tofino: line rate)
    switch_process_ns: float = 50.0
    #: DPDK userspace stack cost per message (send or receive) at a CPU
    #: (eRPC-class userspace stacks run well under a microsecond)
    dpdk_stack_ns: float = 700.0
    #: kernel demand-paging path per 4 KB page fault (Fastswap-like);
    #: dominated by fault handling + invalidations (section 7.1)
    paging_stack_ns: float = 3_500.0
    #: TCP-flavored DPDK stack used by AIFM (section 7.1: slower than eRPC)
    tcp_stack_ns: float = 2_500.0
    #: link bandwidth (100 Gbps NICs)
    link_bytes_per_ns: float = gbps_to_bytes_per_ns(100.0)
    #: probability a request/response message is dropped (fault injection)
    drop_probability: float = 0.0
    #: client retransmission timeout -- must exceed the longest
    #: legitimate traversal (hundreds of microseconds for many-hop
    #: distributed scans), or duplicates pile load onto the accelerators
    retransmit_timeout_ns: float = 2_000.0 * US
    #: initial client backoff after an admission-control RETRY NACK;
    #: doubles per consecutive NACK (with jitter) up to the cap below
    retry_backoff_ns: float = 2.0 * US
    #: ceiling on the exponential RETRY backoff
    retry_backoff_cap_ns: float = 64.0 * US
    #: doorbell flush timer: a partial batch is sent after this long
    #: even if ``batch_size`` was never reached
    doorbell_flush_ns: float = 2.0 * US


@dataclass(frozen=True)
class TransportParams:
    """Reliable-transport stack knobs (see ``repro.transport``).

    The stack arms per-hop ack/retransmit *per destination link*: in the
    default ``"auto"`` mode a send is reliable exactly when the link it
    crosses has a :class:`~repro.sim.network.LinkProfile` (loss/jitter
    injected through the channel interface).  ``"always"`` arms every
    send; ``"never"`` degrades to cut-through delivery, leaving the
    client's end-to-end retransmission as the only recovery mechanism
    (the pre-transport behaviour, kept for A/B comparison).
    """

    #: "auto" | "always" | "never" -- when per-hop reliability arms
    mode: str = "auto"
    #: versioned transport header prepended to armed DATA segments
    #: (version, flags, seq, ack, hop-epoch + padding)
    header_bytes: int = 24
    #: wire size of a standalone ACK segment (Ethernet frame + header)
    ack_bytes: int = 88
    #: initial per-hop retransmission timer; much shorter than the
    #: client's end-to-end timeout -- a hop spans one link, not a
    #: whole multi-node traversal
    hop_timeout_ns: float = 25.0 * US
    #: ceiling for the per-hop capped exponential backoff
    hop_backoff_cap_ns: float = 200.0 * US
    #: give up on a segment after this many retransmissions (the
    #: client's end-to-end retry then remains as the last resort)
    max_hop_retries: int = 12
    #: per-source window of remembered sequence numbers for duplicate
    #: suppression at the receiver
    dedup_window: int = 4096


@dataclass(frozen=True)
class MemoryParams:
    """Memory node capacity/bandwidth model."""

    #: per-node memory bandwidth cap (25 GB/s, section 7)
    bandwidth_bytes_per_ns: float = gBps_to_bytes_per_ns(25.0)
    #: bandwidth without the vendor interconnect IP (supp fig 1b: 34 GB/s)
    bandwidth_no_interconnect_bytes_per_ns: float = gBps_to_bytes_per_ns(34.0)
    #: per-node DRAM capacity in the simulated rack
    node_capacity_bytes: int = 64 * MB
    #: CPU-node cache size for caching baselines (paper: 2 GB against
    #: ~128 GB of data, a ~1.6% ratio; we preserve the cache:data ratio
    #: instead of the absolute sizes -- the scaled workloads carry
    #: 5-15 MB, so the scaled cache is 128 KB -- see DESIGN.md)
    cache_bytes: int = 128 * KB
    #: page size for the paging baseline
    page_bytes: int = 4 * KB


@dataclass(frozen=True)
class PlacementParams:
    """Elastic placement subsystem knobs (see ``repro.placement``).

    The hotness tracker, migration engine, and rebalancer are sized in
    *segments*: fixed power-of-two virtual-address chunks that are the
    unit of heat accounting and of a single migration.
    """

    #: heat-accounting / migration granularity (power of two)
    segment_bytes: int = 64 * KB
    #: EWMA half-life for segment heat decay
    hot_halflife_ns: float = 200.0 * US
    #: the tracker samples 1-in-N accelerator loads (hardware samples
    #: rather than counting every access; each sample is weighted by N)
    sample_period: int = 8
    #: background copy rate during migration phase 1 (deliberately below
    #: the 25 B/ns node cap so live traversals keep headroom)
    migration_bandwidth_bytes_per_ns: float = 10.0
    #: chunk size for the phase-1 copy loop
    copy_chunk_bytes: int = 64 * KB
    #: how long the old owner's forwarding hints stay installed after
    #: the ownership fence (covers in-flight/parked stragglers)
    forward_window_ns: float = 4_000.0 * US
    #: rebalancer control-loop period
    rebalance_interval_ns: float = 250.0 * US
    #: fill-fraction gap between fullest and emptiest node that
    #: triggers capacity rebalancing
    fill_imbalance_threshold: float = 0.10
    #: max/mean node-heat ratio that triggers hotness rebalancing
    hot_skew_threshold: float = 3.0
    #: migrations launched per rebalance round (bounds churn)
    migrations_per_round: int = 2
    #: when fill and heat are quiet, also migrate segments to minimize
    #: *cut edges* in the sampled segment-affinity graph (successor
    #: edges spanning two memory nodes: one switch hop each per
    #: traversal that crosses them)
    cut_edge_objective: bool = True
    #: minimum decayed affinity gain (external-edge weight recovered
    #: minus internal-edge weight cut) before a cut move is worth the
    #: migration churn; also damps move/counter-move oscillation
    cut_min_gain: float = 1.0


@dataclass(frozen=True)
class DurabilityParams:
    """Durability subsystem knobs (see ``repro.durability``).

    Disabled by default: with ``enabled=False`` no redo log exists, no
    replication traffic is generated, and acknowledgement timing is
    byte-identical to a build without the subsystem.  When enabled,
    every acknowledged STORE is appended to the owning node's redo log,
    group-committed, and replicated to ``replication_factor - 1`` peer
    nodes before the client sees the response.
    """

    #: master switch; off keeps the volatile pre-durability behaviour
    enabled: bool = False
    #: copies of every log record / recovered extent, home included
    #: (2 => one replica peer per home node)
    replication_factor: int = 2
    #: group-commit window: the flusher waits this long after the first
    #: buffered record before forcing a flush, batching later arrivals
    group_commit_ns: float = 8.0 * US
    #: force a flush early once this many payload bytes are buffered
    group_commit_bytes: int = 16 * KB
    #: sequential append bandwidth of the log device (below the 25 B/ns
    #: node cap: the log shares the memory channels with live loads)
    log_bandwidth_bytes_per_ns: float = 12.5
    #: on-log framing per record (LSN, vaddr, length, checksum)
    record_header_bytes: int = 32
    #: time between a node dying and recovery starting (failure
    #: detector: missed heartbeats at the switch)
    failure_detect_ns: float = 50.0 * US
    #: replay bandwidth while re-homing a dead node's ranges (same
    #: budget as migration phase-1 copies)
    replay_bandwidth_bytes_per_ns: float = 10.0
    #: fixed per-range cost during replay (cursor setup, TCAM insert)
    replay_range_ns: float = 500.0


@dataclass(frozen=True)
class PowerParams:
    """Average active power per platform, in watts.

    Calibrated to reproduce Fig 7's structure: the FPGA accelerator draws
    far less than a Xeon package share, and wimpy cores draw less power but
    run so much longer that their energy/request can exceed the Xeon's
    (observed for UPC; section 7.1).
    """

    #: whole FPGA board (XRT reports all rails, an upper bound) per
    #: accelerator; U250 boards idle ~20 W, pulse uses 29% LUTs
    fpga_watts: float = 30.0
    #: per active RPC worker: core + uncore + DRAM share of a Xeon 6240
    cpu_worker_watts: float = 16.5
    #: per active wimpy worker at 1.0 GHz: dynamic power scales with the
    #: clock but the static/uncore/DRAM floor does not, so a downclocked
    #: worker still burns most of a full core's share -- the mechanism
    #: behind Fig 7's RPC-W-worse-than-RPC result
    wimpy_worker_watts: float = 15.0
    #: client CPU share while driving requests (charged to all systems)
    client_watts: float = 0.0


@dataclass(frozen=True)
class SystemParams:
    """Bundle of all model parameters; immutable, copy-on-modify."""

    accelerator: AcceleratorParams = field(default_factory=AcceleratorParams)
    cpu: CpuParams = field(default_factory=CpuParams)
    wimpy: CpuParams = field(default_factory=lambda: CpuParams(
        clock_ghz=1.0, dram_access_ns=110.0))
    network: NetworkParams = field(default_factory=NetworkParams)
    transport: TransportParams = field(default_factory=TransportParams)
    memory: MemoryParams = field(default_factory=MemoryParams)
    placement: PlacementParams = field(default_factory=PlacementParams)
    durability: DurabilityParams = field(default_factory=DurabilityParams)
    power: PowerParams = field(default_factory=PowerParams)

    def with_overrides(self, **kwargs) -> "SystemParams":
        """Return a copy with top-level sections replaced."""
        return replace(self, **kwargs)


DEFAULT_PARAMS = SystemParams()


def describe(params: SystemParams) -> Dict[str, float]:
    """Flat summary of the key constants, for experiment logs."""
    acc = params.accelerator
    return {
        "netstack_ns": acc.netstack_ns,
        "scheduler_dispatch_ns": acc.scheduler_dispatch_ns,
        "t_d_256B_ns": acc.memory_access_ns(acc.max_load_bytes),
        "fpga_instruction_ns": acc.instruction_ns,
        "cpu_instruction_ns": params.cpu.instruction_ns(),
        "wimpy_instruction_ns": params.wimpy.instruction_ns(),
        "segment_ns": params.network.segment_ns,
        "mem_bw_bytes_per_ns": params.memory.bandwidth_bytes_per_ns,
        "link_bytes_per_ns": params.network.link_bytes_per_ns,
    }
