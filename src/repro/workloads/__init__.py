"""The paper's three applications and their workload generators.

* **UPC** (user profile cache): YCSB-C-style uniform key lookups on a
  chained hash table with long chains -- section 7's Table 2.
* **TC** (threaded conversations): YCSB-E-style scans on a B+Tree.
* **TSV** (time-series visualization): windowed aggregations over a
  synthetic Open-uPMU-like power-grid trace stored in a B+Tree keyed by
  timestamp.
"""

from repro.workloads.ycsb import UniformKeyGenerator, ZipfianKeyGenerator
from repro.workloads.upmu import UPMU_SAMPLE_HZ, generate_upmu_trace
from repro.workloads.apps import (
    TSV_WINDOWS_S,
    Workload,
    build_tc,
    build_tsv,
    build_upc,
    standard_workloads,
)

__all__ = [
    "TSV_WINDOWS_S",
    "UPMU_SAMPLE_HZ",
    "UniformKeyGenerator",
    "Workload",
    "ZipfianKeyGenerator",
    "build_tc",
    "build_tsv",
    "build_upc",
    "generate_upmu_trace",
    "standard_workloads",
]
