"""Application builders for UPC, TC, and TSV (section 7, Table 2).

Each builder populates a data structure in rack memory and produces the
operation stream the figures replay.  Scale: the paper's 0.5-billion-pair
datasets do not fit a Python simulation; the builders preserve the
quantities performance depends on -- traversal lengths (chain length,
scan size, aggregation window), record sizes (8 B keys, 240 B values),
and the cache:data size ratio -- at reduced population (DESIGN.md,
substitution table).

Placement defaults reproduce the paper's distributed behaviour:

* UPC partitions bucket chains by key across nodes, so multi-node UPC
  never crosses nodes mid-traversal (Table 2 "partitionable").
* TC/TSV trees use glibc-style interleaved allocation, calibrated (block
  size 3) so that 30-40% of pointer hops cross nodes on two nodes --
  the fraction section 7.1 reports.  ``partitioned=True`` switches to
  key-range partitioning (Supp Fig 2).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Tuple

from repro.mem.node import GlobalMemory
from repro.structures.btree import BPlusTree
from repro.structures.hashtable import HashTable
from repro.workloads.upmu import (
    SAMPLE_PERIOD_US,
    UPMU_SAMPLE_HZ,
    generate_upmu_trace,
)
from repro.workloads.ycsb import UniformKeyGenerator

#: TSV window sizes evaluated in the paper (seconds)
TSV_WINDOWS_S = (7.5, 15.0, 30.0, 60.0)

#: glibc-style interleaving granularity: consecutive same-size
#: allocations that land on one node before moving on; calibrated so
#: ~1/3 of leaf hops cross nodes on two nodes (section 7.1: 30-40%)
DEFAULT_INTERLEAVE_BLOCK = 3


@dataclass
class Workload:
    """A built application plus its replayable operation stream."""

    name: str
    structure: Any
    operations: List[Tuple[Any, tuple]]
    #: Table 2 reference values for this workload
    table2_eta: Optional[float] = None
    table2_iterations: Optional[float] = None
    partitionable: bool = False
    description: str = ""
    expected: List[Any] = field(default_factory=list, repr=False)

    def expected_value(self, index: int):
        """Reference answer for operation ``index`` (tests use this)."""
        return self.expected[index]


def _interleaved(node_count: int,
                 block: int = DEFAULT_INTERLEAVE_BLOCK
                 ) -> Callable[[int], int]:
    def placement(ordinal: int) -> int:
        return (ordinal // block) % node_count
    return placement


def _key_partitioned(node_count: int, max_key: int
                     ) -> Callable[[int], int]:
    span = max(1, (max_key + 1))

    def placement(min_key: int) -> int:
        return min(node_count - 1, min_key * node_count // span)
    return placement


# ---------------------------------------------------------------------------
# UPC: user profile cache (YCSB-C on a hash table)
# ---------------------------------------------------------------------------
def build_upc(memory: GlobalMemory, node_count: int,
              num_pairs: int = 20_000, chain_length: int = 200,
              value_bytes: int = 240, requests: int = 200,
              seed: int = 0) -> Workload:
    """Uniform key lookups over long hash chains.

    ``chain_length`` ~ 200 reproduces Table 2's ~100 average iterations
    (uniform hits land mid-chain); the paper's footnote notes the load
    factor was deliberately high to force long traversals.
    """
    buckets = max(1, num_pairs // chain_length)
    table = HashTable(memory, buckets=buckets, value_bytes=value_bytes,
                      partition_nodes=node_count)

    def value_of(key: int) -> bytes:
        return key.to_bytes(8, "little") * (value_bytes // 8)

    for key in range(num_pairs):
        table.insert(key, value_of(key))

    finder = table.find_iterator()
    generator = UniformKeyGenerator(list(range(num_pairs)), seed=seed)
    operations = []
    expected = []
    for _ in range(requests):
        key = generator.next_key()
        operations.append((finder, (key,)))
        expected.append(value_of(key))

    return Workload(
        name="UPC",
        structure=table,
        operations=operations,
        table2_eta=0.06,
        table2_iterations=100,
        partitionable=True,
        description=(f"{num_pairs} pairs, {buckets} buckets "
                     f"(chains ~{chain_length}), {value_bytes} B values"),
        expected=expected,
    )


# ---------------------------------------------------------------------------
# TC: threaded conversations (YCSB-E scans on a B+Tree)
# ---------------------------------------------------------------------------
def build_tc(memory: GlobalMemory, node_count: int,
             num_pairs: int = 40_000, fanout: int = 12,
             scan_limit: int = 800, requests: int = 200,
             seed: int = 0, partitioned: bool = False,
             record_bytes: int = 240,
             interleave: int = DEFAULT_INTERLEAVE_BLOCK) -> Workload:
    """Range scans of ~``scan_limit`` messages per conversation thread.

    scan_limit 800 at fanout 12 yields ~70 leaf visits plus the descent:
    Table 2's 75 average iterations.  The offloaded scan returns match
    count + key checksum (see BTreeScanCount for the scratch-pad-bounded
    adaptation of YCSB-E's record payloads).  Each message's 240 B record
    (the paper's value size) is allocated interleaved with the leaves, as
    a grown index sits in memory.
    """
    keys = list(range(num_pairs))
    if partitioned:
        tree = BPlusTree(memory, fanout=fanout,
                         key_placement=_key_partitioned(
                             node_count, num_pairs - 1))
    else:
        tree = BPlusTree(memory, fanout=fanout,
                         placement=_interleaved(node_count, interleave))

    def allocate_records(chunk, preferred_node):
        # Leaf values become pointers to the out-of-line records.
        return [memory.alloc(record_bytes, preferred_node=preferred_node)
                for _ in chunk]

    tree.bulk_load([(k, 0) for k in keys], leaf_hook=allocate_records)

    scanner = tree.scan_count_iterator(limit=scan_limit)
    rng = random.Random(seed)
    max_start = max(1, num_pairs - scan_limit)
    operations = []
    expected = []
    for _ in range(requests):
        start = rng.randrange(max_start)
        operations.append((scanner, (start,)))
        expected.append(start)

    return Workload(
        name="TC",
        structure=tree,
        operations=operations,
        table2_eta=0.79,
        table2_iterations=75,
        partitionable=False,
        description=(f"{num_pairs} messages, fanout {fanout}, "
                     f"scans of {scan_limit}"),
        expected=expected,
    )


# ---------------------------------------------------------------------------
# TSV: time-series visualization (windowed aggregation on uPMU data)
# ---------------------------------------------------------------------------
def build_tsv(memory: GlobalMemory, node_count: int,
              window_s: float = 7.5, duration_s: float = 600.0,
              fanout: int = 9, requests: int = 200, seed: int = 0,
              partitioned: bool = False,
              record_bytes: int = 128,
              interleave: int = DEFAULT_INTERLEAVE_BLOCK) -> Workload:
    """Aggregations (sum/avg/min/max, chosen per request) over
    ``window_s``-second windows of a synthetic uPMU voltage trace.

    At the 50 Hz effective rate, windows of 7.5/15/30/60 s cover
    375/750/1500/3000 samples; with fanout-9 leaves that is ~44/87/
    170/340 iterations -- Table 2's ladder.  The aggregated channel lives
    inline in the leaves (the accelerator's ALU needs it); the full
    multi-channel reading (~128 B: a C37.118-style frame with several
    phasors plus quality metadata) is allocated alongside, so the on-disk
    layout -- and the paging baseline's locality -- matches a real
    ingest.
    """
    if window_s >= duration_s:
        raise ValueError("window must be shorter than the trace")
    trace = generate_upmu_trace(duration_s, seed=seed)
    max_ts = trace[-1][0]
    if partitioned:
        tree = BPlusTree(memory, fanout=fanout,
                         key_placement=_key_partitioned(
                             node_count, max_ts))
    else:
        tree = BPlusTree(memory, fanout=fanout,
                         placement=_interleaved(node_count, interleave))

    def allocate_records(chunk, preferred_node):
        for _ in chunk:
            memory.alloc(record_bytes, preferred_node=preferred_node)
        return None  # inline values stay -- the kernel aggregates them

    tree.bulk_load(trace, leaf_hook=allocate_records)

    aggregators = {op: tree.aggregate_iterator(op)
                   for op in ("sum", "avg", "min", "max")}
    rng = random.Random(seed + 1)
    window_us = int(window_s * 1e6)
    latest_start = max_ts - window_us
    operations = []
    expected = []
    values = [v for _, v in trace]
    first_ts = trace[0][0]
    samples_per_window = window_us // SAMPLE_PERIOD_US
    for _ in range(requests):
        # Align starts to sample boundaries for clean reference answers.
        start_index = rng.randrange(
            max(1, latest_start // SAMPLE_PERIOD_US))
        t0 = first_ts + start_index * SAMPLE_PERIOD_US
        t1 = t0 + window_us
        op = rng.choice(("sum", "avg", "min", "max"))
        operations.append((aggregators[op], (t0, t1)))
        window_values = values[start_index:start_index
                               + samples_per_window]
        if not window_values:
            expected.append(None)
        elif op == "sum":
            expected.append(sum(window_values))
        elif op == "avg":
            expected.append(sum(window_values) / len(window_values))
        elif op == "min":
            expected.append(min(window_values))
        else:
            expected.append(max(window_values))

    return Workload(
        name=f"TSV-{window_s:g}s",
        structure=tree,
        operations=operations,
        table2_eta=0.89,
        table2_iterations={7.5: 44, 15.0: 87, 30.0: 165,
                           60.0: 320}.get(window_s),
        partitionable=False,
        description=(f"{duration_s:g}s trace @ {UPMU_SAMPLE_HZ} Hz, "
                     f"{window_s:g}s windows, fanout {fanout}"),
        expected=expected,
    )


def standard_workloads(memory: GlobalMemory, node_count: int,
                       requests: int = 200, seed: int = 0,
                       tsv_windows=TSV_WINDOWS_S) -> List[Workload]:
    """The paper's six workload columns: UPC, TC, TSV-{7.5,15,30,60}s."""
    workloads = [
        build_upc(memory, node_count, requests=requests, seed=seed),
        build_tc(memory, node_count, requests=requests, seed=seed),
    ]
    for window in tsv_windows:
        workloads.append(build_tsv(memory, node_count, window_s=window,
                                   requests=requests, seed=seed))
    return workloads
