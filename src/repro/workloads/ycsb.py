"""YCSB-style key generators (Cooper et al., SoCC'10).

The paper drives UPC and TC with YCSB workloads C and E under *uniform*
access distributions (section 7); the Zipfian generator is included for
sensitivity exploration beyond the paper (locality is exactly what the
caching baseline's performance hinges on).
"""

from __future__ import annotations

import random
from typing import List


class UniformKeyGenerator:
    """Uniform choice over a key population."""

    def __init__(self, keys: List[int], seed: int = 0):
        if not keys:
            raise ValueError("key population is empty")
        self._keys = list(keys)
        self._rng = random.Random(seed)

    def next_key(self) -> int:
        return self._rng.choice(self._keys)


class ZipfianKeyGenerator:
    """Zipfian choice (theta ~ 0.99 by default, YCSB's default skew).

    Uses the Gray et al. rejection-free method with precomputed zeta
    constants, like the reference YCSB implementation.
    """

    def __init__(self, keys: List[int], theta: float = 0.99,
                 seed: int = 0):
        if not keys:
            raise ValueError("key population is empty")
        if not 0.0 < theta < 1.0:
            raise ValueError("theta must be in (0, 1)")
        self._keys = list(keys)
        self._rng = random.Random(seed)
        self._theta = theta
        n = len(keys)
        self._zetan = sum(1.0 / (i ** theta) for i in range(1, n + 1))
        self._zeta2 = 1.0 + 0.5 ** theta
        self._alpha = 1.0 / (1.0 - theta)
        self._eta = ((1.0 - (2.0 / n) ** (1.0 - theta))
                     / (1.0 - self._zeta2 / self._zetan))

    def next_key(self) -> int:
        n = len(self._keys)
        u = self._rng.random()
        uz = u * self._zetan
        if uz < 1.0:
            rank = 0
        elif uz < self._zeta2:
            rank = 1
        else:
            rank = int(n * ((self._eta * u - self._eta + 1.0)
                            ** self._alpha))
            rank = min(rank, n - 1)
        return self._keys[rank]
