"""Synthetic Open-uPMU trace generator.

The paper's TSV workload aggregates over the Open uPMU dataset: a
three-month trace of voltage, current, and phase readings from micro-
phasor measurement units on LBNL's distribution grid.  The dataset is not
redistributable here, so this module synthesizes an equivalent trace with
the properties TSV actually exercises (DESIGN.md, substitution table):

* fixed-rate samples -- the paper's window sizes imply ~50 Hz effective
  rate (60 s -> "3 thousand data points", section 7);
* chronologically ordered timestamps (what gives the Cache baseline its
  relatively better locality on TSV);
* plausible magnitude structure: a 120 V nominal voltage with slow
  diurnal drift, 60 Hz-adjacent oscillation aliasing, and measurement
  noise -- so min/max/avg aggregates are non-degenerate.

Values are scaled to integer micro-units (1e-6 V) because the pulse
accelerator's ALU is integer-only (fixed-point is the standard choice for
such hardware; the paper's Supp B discusses richer datapaths as future
work).
"""

from __future__ import annotations

import math
import random
from typing import List, Tuple

#: effective sample rate implied by "60 s ~ 3000 points" (section 7)
UPMU_SAMPLE_HZ = 50

#: microseconds between samples
SAMPLE_PERIOD_US = 1_000_000 // UPMU_SAMPLE_HZ

#: nominal line voltage in micro-volts
NOMINAL_MICROVOLTS = 120_000_000


def generate_upmu_trace(duration_s: float, seed: int = 0,
                        start_us: int = 0) -> List[Tuple[int, int]]:
    """(timestamp_us, voltage_microvolts) pairs at the uPMU sample rate."""
    if duration_s <= 0:
        raise ValueError("duration must be positive")
    rng = random.Random(seed)
    samples = int(duration_s * UPMU_SAMPLE_HZ)
    trace: List[Tuple[int, int]] = []
    phase = rng.random() * 2 * math.pi
    for i in range(samples):
        ts = start_us + i * SAMPLE_PERIOD_US
        seconds = ts / 1e6
        # Slow diurnal drift (+-1%), a residual oscillation from imperfect
        # RMS windows (+-0.2%), and white measurement noise (+-0.05%).
        drift = 0.01 * math.sin(2 * math.pi * seconds / 86_400.0)
        ripple = 0.002 * math.sin(2 * math.pi * 0.3 * seconds + phase)
        noise = rng.gauss(0.0, 0.0005)
        volts = NOMINAL_MICROVOLTS * (1.0 + drift + ripple + noise)
        trace.append((ts, int(volts)))
    return trace
