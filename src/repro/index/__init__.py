"""Client-resident split index (compute-side directory, PULSE fallback).

Inspired by the DEX/Outback split-index design: the client keeps a
compact key -> (node_id, vaddr, placement_epoch) directory so hot point
lookups become one direct READ to the owning memory node -- one RTT, no
switch traversal, no pointer chase.  The offloaded traversal engine
remains the always-correct fallback for misses, stale entries, and
everything that is not a point lookup.
"""

from repro.index.directory import IndexEntry, SplitIndexDirectory

__all__ = ["IndexEntry", "SplitIndexDirectory"]
