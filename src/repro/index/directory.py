"""The client-resident directory behind the split-index fast path.

One :class:`SplitIndexDirectory` lives inside each
:class:`~repro.core.client.PulseClient`.  It maps a structure key to the
virtual address of the node that terminates the key's traversal, plus
the memory node that owned the address and the
:class:`~repro.placement.rangemap.PlacementMap` version ("placement
epoch") at learn time.  Entries arrive two ways:

* **lazily** -- every completed offloaded traversal of an indexable
  iterator reports its terminal (key, vaddr) back to the directory;
* **bulk** -- :meth:`bulk_load` walks a freshly built structure's
  ``index_entries()`` and primes the whole key space at once.

The directory is a *hint cache*, never an authority: a direct read
against a stale entry NACKs at the memory node (which validates the
address against its live translation table and placement before
touching DRAM) and the client falls back to the offloaded traversal,
repairing the entry from the fresh result.  Capacity is bounded with
FIFO eviction, mirroring the switch's bounded client table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

from repro.obs.metrics import MetricsRegistry


@dataclass
class IndexEntry:
    """Where a key's terminal node lived when we last saw it."""

    node_id: int
    vaddr: int
    epoch: int


class SplitIndexDirectory:
    """Bounded key -> :class:`IndexEntry` cache with epoch invalidation."""

    def __init__(self, registry: Optional[MetricsRegistry] = None,
                 name: str = "client", capacity: int = 1 << 20,
                 invalidate_on_move: bool = True):
        if capacity <= 0:
            raise ValueError("split-index capacity must be positive")
        self.name = name
        self.capacity = capacity
        #: when False the directory keeps stale entries until a direct
        #: read NACKs (lazy repair); when True ``on_move`` drops them
        #: eagerly as the placement map changes
        self.invalidate_on_move = invalidate_on_move
        self._entries: Dict[int, IndexEntry] = {}
        if registry is None:
            registry = MetricsRegistry()
        # Shared, cluster-wide counters (get-or-create by dotted name).
        self.hits = registry.counter("index.hits")
        self.misses = registry.counter("index.misses")
        self.stale_nacks = registry.counter("index.stale_nacks")
        self.timeouts = registry.counter("index.timeouts")
        self.decode_misses = registry.counter("index.decode_misses")
        self.repairs = registry.counter("index.repairs")
        self.evictions = registry.counter("index.evictions")
        self.invalidations = registry.counter("index.invalidations")
        # Occupancy is per-directory, so the gauge name must be too.
        registry.gauge(f"{name}.index.entries",
                       fn=lambda: len(self._entries))

    def __len__(self) -> int:
        return len(self._entries)

    # -- lookup / learn ------------------------------------------------------
    def lookup(self, key: int) -> Optional[IndexEntry]:
        entry = self._entries.get(key)
        if entry is None:
            self.misses.inc()
            return None
        self.hits.inc()
        return entry

    def learn(self, key: int, node_id: int, vaddr: int,
              epoch: int) -> None:
        """Insert or refresh one entry (FIFO-evicting when full)."""
        existing = self._entries.pop(key, None)
        if existing is None and len(self._entries) >= self.capacity:
            self._entries.pop(next(iter(self._entries)))
            self.evictions.inc()
        self._entries[key] = IndexEntry(node_id, vaddr, epoch)
        if existing is not None:
            self.repairs.inc()

    def invalidate(self, key: int) -> bool:
        if self._entries.pop(key, None) is None:
            return False
        self.invalidations.inc()
        return True

    # -- bulk priming --------------------------------------------------------
    def bulk_load(self, entries: Iterable[Tuple[int, int]],
                  placement_map) -> int:
        """Prime the directory from a structure's ``index_entries()``.

        ``entries`` yields (key, vaddr); ownership and epoch come from
        the live placement map.  Returns the number of entries loaded.
        """
        loaded = 0
        epoch = placement_map.version
        for key, vaddr in entries:
            self.learn(key, placement_map.node_of(vaddr), vaddr, epoch)
            loaded += 1
        return loaded

    # -- placement-change invalidation ---------------------------------------
    def on_move(self, virt_start: int, virt_end: int, new_owner: int,
                version: int) -> None:
        """Placement-map subscriber: drop entries in a migrated range.

        Entries are dropped rather than retargeted: the bytes at the
        destination are correct, but retargeting would hide staleness
        bugs from the NACK path, and the next traversal re-learns the
        entry with the fresh owner anyway.
        """
        if not self.invalidate_on_move:
            return
        stale = [k for k, e in self._entries.items()
                 if virt_start <= e.vaddr < virt_end]
        for k in stale:
            del self._entries[k]
        if stale:
            self.invalidations.inc(len(stale))
