"""The durability service: per-node redo logging + replication wiring.

:class:`DurabilityService` is the cluster-level object: it owns the
bootstrap capture store (functional builds), one :class:`ReplicaStore`
per node (everything replicated onto that node), one
:class:`NodeDurability` per node (that node's log, flusher, and commit
tracking), the live-node set, and the
:class:`~repro.durability.recovery.RecoveryManager`.

Group commit: a STORE journals a record and arms the commit timer; the
single flush process per node drains the buffer, charges the flush at
the log bandwidth, ships one :class:`~repro.core.messages.
ReplicateRecords` per replica target, and advances the durable LSN only
once every live target acked (a dead target is discarded -- a degraded
commit).  The accelerator's response path waits on ``wait_durable`` so
a client never sees an acknowledgment for bytes that could still be
lost with the node.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.core.messages import DURABILITY_KIND, ReplicateRecords
from repro.durability.recovery import RecoveryManager
from repro.durability.redolog import RedoLog
from repro.durability.replication import ReplicaStore, replica_targets
from repro.sim.engine import Event


class DurabilityError(RuntimeError):
    """Misuse of the durability subsystem (e.g. kill without it)."""


class NodeDurability:
    """One node's redo log, group-commit flusher, and commit waiters."""

    def __init__(self, service: "DurabilityService", node_id: int):
        self.service = service
        self.env = service.env
        self.params = service.params
        self.node_id = node_id
        self.log = RedoLog(self.params.record_header_bytes)
        self.durable_lsn = 0
        self.dead = False
        #: attached by :meth:`DurabilityService.attach_accelerator`;
        #: replication rides the accelerator's transport session
        self.accelerator = None
        self._kick = Event(self.env)
        self._timer_armed = False
        self._next_flush_id = 0
        #: the one in-flight flush: (flush_id, pending targets, done)
        self._pending: Optional[Tuple[int, Set[int], Event]] = None
        self._waiters: List[Tuple[int, Event]] = []
        registry = service.registry
        prefix = f"mem{node_id}.dur"
        self._m_records = registry.counter(f"{prefix}.records")
        self._m_flushes = registry.counter(f"{prefix}.flushes")
        self._m_flushed_bytes = registry.counter(f"{prefix}.flushed_bytes")
        self._m_replica_tx = registry.counter(
            f"{prefix}.replica_tx_records")
        self._m_acks_rx = registry.counter(f"{prefix}.acks_rx")
        self._m_applied = registry.counter(f"{prefix}.applied_records")
        self._m_commit_waits = registry.counter(f"{prefix}.commit_waits")
        self._m_degraded = registry.counter(f"{prefix}.degraded_commits")
        self._m_restored = registry.counter(f"{prefix}.restored_records")
        self._g_durable = registry.gauge(f"{prefix}.durable_lsn")
        self.env.process(self._flush_loop())

    # -- the journal side ---------------------------------------------------
    def journal(self, vaddr: int, data: bytes) -> int:
        """Append one STORE to the redo log; returns its LSN."""
        record = self.log.append(vaddr, data)
        self._m_records.inc()
        if self.log.buffer_bytes >= self.params.group_commit_bytes:
            self._kick_flush()
        elif not self._timer_armed:
            self._timer_armed = True
            self.env.process(self._commit_timer())
        return record.lsn

    def wait_durable(self, lsn: int) -> Optional[Event]:
        """None when ``lsn`` is already durable, else an event to wait on."""
        if lsn <= self.durable_lsn or self.dead:
            return None
        self._m_commit_waits.inc()
        event = Event(self.env)
        self._waiters.append((lsn, event))
        return event

    def _commit_timer(self):
        yield self.env.timeout(self.params.group_commit_ns)
        self._timer_armed = False
        self._kick_flush()

    def _kick_flush(self) -> None:
        if not self._kick.triggered:
            self._kick.succeed()

    # -- the flush side -----------------------------------------------------
    def _flush_loop(self):
        """The single flusher: serialize flushes, monotone durable LSN."""
        while True:
            yield self._kick
            self._kick = Event(self.env)
            while self.log.buffer:
                records = self.log.take_buffer()
                payload = sum(r.wire_bytes for r in records)
                yield self.env.timeout(
                    payload / self.params.log_bandwidth_bytes_per_ns)
                self._m_flushes.inc()
                self._m_flushed_bytes.inc(payload)
                if self.dead:
                    continue
                yield from self._replicate(records)
                self._commit(records[-1].lsn)

    def _replicate(self, records):
        """Ship the flush to every replica target; returns when acked."""
        addrspace = self.service.memory.addrspace
        node_count = self.service.memory.node_count
        per_target: Dict[int, list] = {}
        for record in records:
            home = addrspace.node_of(record.vaddr)
            if home is None:
                continue
            for target in replica_targets(
                    home, self.node_id, node_count, self.service.live,
                    self.params.replication_factor):
                per_target.setdefault(target, []).append(record)
        if not per_target or self.accelerator is None:
            return
        flush_id = self._next_flush_id
        self._next_flush_id += 1
        done = Event(self.env)
        self._pending = (flush_id, set(per_target), done)
        for target, recs in sorted(per_target.items()):
            message = ReplicateRecords(src_node=self.node_id,
                                       flush_id=flush_id,
                                       records=tuple(recs))
            self._m_replica_tx.inc(len(recs))
            self.accelerator.session.send(
                f"mem{target}", DURABILITY_KIND, message,
                message.wire_bytes(), segments=1)
        yield done
        self._pending = None

    def _commit(self, lsn: int) -> None:
        self.durable_lsn = max(self.durable_lsn, lsn)
        self._g_durable.set(float(self.durable_lsn))
        ready = [e for threshold, e in self._waiters
                 if threshold <= self.durable_lsn]
        self._waiters = [(threshold, e) for threshold, e in self._waiters
                         if threshold > self.durable_lsn]
        for event in ready:
            event.succeed()

    # -- the replica side ---------------------------------------------------
    def apply_replica(self, message: ReplicateRecords) -> None:
        """Apply a peer's flush to this node's replica store."""
        store = self.service.replicas[self.node_id]
        for record in message.records:
            store.apply(record.vaddr, record.data)
            self._m_applied.inc()

    def on_ack(self, ack) -> None:
        """A replica target acked one of our flushes."""
        self._m_acks_rx.inc()
        if self._pending is None or ack.flush_id != self._pending[0]:
            return
        _flush_id, targets, done = self._pending
        targets.discard(ack.src_node)
        if not targets and not done.triggered:
            done.succeed()

    # -- failure handling ---------------------------------------------------
    def on_node_dead(self, dead: int) -> None:
        if dead == self.node_id:
            # Our own death: nothing we promised can be re-acknowledged
            # (the accelerator's dead flag suppresses every response),
            # so release blocked processes instead of leaking them.
            self.dead = True
            if self._pending is not None and not self._pending[2].triggered:
                self._pending[2].succeed()
            waiters, self._waiters = self._waiters, []
            for _threshold, event in waiters:
                event.succeed()
            return
        if self._pending is not None:
            _flush_id, targets, done = self._pending
            if dead in targets:
                targets.discard(dead)
                if not targets and not done.triggered:
                    self._m_degraded.inc()
                    done.succeed()


class DurabilityService:
    """Cluster-wide durability state: stores, node flushers, recovery."""

    def __init__(self, env, memory, params, registry):
        self.env = env
        self.memory = memory
        self.params = params.durability
        self.registry = registry
        if self.params.replication_factor < 1:
            raise DurabilityError("replication_factor must be >= 1")
        self.live: Set[int] = set(range(memory.node_count))
        #: functional builds (zero simulated time) captured per write --
        #: the content every node's recovery can re-derive for free
        self.bootstrap = ReplicaStore()
        #: node id -> everything runtime flushes replicated onto it
        self.replicas: Dict[int, ReplicaStore] = {
            node_id: ReplicaStore() for node_id in self.live}
        self.nodes: Dict[int, NodeDurability] = {
            node_id: NodeDurability(self, node_id) for node_id in
            sorted(self.live)}
        self.recovery = RecoveryManager(self)
        #: attached by the cluster; recovery re-injects reclaimed frames
        self.switch = None
        self._m_crashes = registry.counter("recovery.crashes")

    def capture(self, vaddr: int, data: bytes) -> None:
        """Record one functional (build-time) write in the bootstrap store."""
        self.bootstrap.apply(vaddr, data)

    def attach_accelerator(self, accelerator) -> None:
        state = self.nodes[accelerator.node.node_id]
        state.accelerator = accelerator
        accelerator.durability = state

    def on_node_added(self, node_id: int) -> None:
        self.live.add(node_id)
        self.replicas[node_id] = ReplicaStore()
        self.nodes[node_id] = NodeDurability(self, node_id)

    def on_node_dead(self, dead: int) -> None:
        """Propagate a crash: drop from the live set, unblock commits."""
        self.live.discard(dead)
        self._m_crashes.inc()
        for state in self.nodes.values():
            state.on_node_dead(dead)
