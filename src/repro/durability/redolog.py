"""Per-node append-only redo log.

Every acknowledged STORE (and allocator-visible mutation routed through
the accelerator's write path) appends one :class:`LogRecord`.  Records
carry a monotone per-node LSN; the flusher group-commits buffered
records at the log device's sequential bandwidth and the node's durable
LSN advances only when the flush -- and its replication -- completes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List


@dataclass(frozen=True)
class LogRecord:
    """One redo-log entry: an absolute byte image at a virtual address.

    ``wire_bytes`` is the on-log (and on-wire, when replicated) size:
    the fixed record framing -- LSN, vaddr, length, checksum -- plus the
    payload itself.
    """

    lsn: int
    vaddr: int
    data: bytes
    wire_bytes: int


class RedoLog:
    """The append side of one node's log: LSN assignment + buffering."""

    def __init__(self, record_header_bytes: int):
        self.record_header_bytes = record_header_bytes
        self.next_lsn = 1
        #: records appended but not yet picked up by the flusher
        self.buffer: List[LogRecord] = []
        self.buffer_bytes = 0

    def append(self, vaddr: int, data: bytes) -> LogRecord:
        record = LogRecord(
            lsn=self.next_lsn, vaddr=vaddr, data=bytes(data),
            wire_bytes=self.record_header_bytes + len(data))
        self.next_lsn += 1
        self.buffer.append(record)
        self.buffer_bytes += record.wire_bytes
        return record

    def take_buffer(self) -> List[LogRecord]:
        """Hand the buffered records to the flusher (clears the buffer)."""
        records, self.buffer = self.buffer, []
        self.buffer_bytes = 0
        return records
