"""Durability subsystem: replicated redo logging and crash recovery.

Disabled by default (``DurabilityParams.enabled``).  When enabled, every
acknowledged STORE is journaled into its node's append-only redo log,
group-committed at a bounded log bandwidth, and replicated to
``replication_factor - 1`` peer nodes before the client sees the
response.  ``cluster.kill_node(i)`` then tears a node down mid-traversal
and the :class:`~repro.durability.recovery.RecoveryManager` re-homes its
ranges onto elected replica owners, replays the logged content, and
resumes in-flight frames -- acknowledged writes are never lost.
"""

from repro.durability.recovery import (CrashInjector, RecoveryError,
                                       RecoveryManager)
from repro.durability.redolog import LogRecord, RedoLog
from repro.durability.replication import (ReplicaStore, elect_owner,
                                          replica_targets)
from repro.durability.service import (DurabilityError, DurabilityService,
                                      NodeDurability)

__all__ = [
    "CrashInjector",
    "DurabilityError",
    "DurabilityService",
    "LogRecord",
    "NodeDurability",
    "RecoveryError",
    "RecoveryManager",
    "RedoLog",
    "ReplicaStore",
    "elect_owner",
    "replica_targets",
]
