"""Crash injection and mid-traversal failover.

``cluster.kill_node(i)`` powers node ``i`` off at one simulated instant:
its accelerator stops receiving, its transmissions vanish, and every
byte in its DRAM is gone.  :class:`RecoveryManager` then runs the
recovery schedule:

1. **Detect** -- the failure detector (missed heartbeats at the switch)
   takes ``failure_detect_ns`` before recovery starts; new frames keep
   routing into the black hole meanwhile and are recovered later.
2. **Replay** -- a timed phase charging the elected owners' log/extent
   replay at ``replay_bandwidth_bytes_per_ns`` plus a fixed per-range
   cursor cost, sized from the dead node's *mapped* TCAM coverage
   (pure metadata, so every process in a sharded run charges the
   identical time).
3. **Fence** -- zero simulated time, mirroring the migration fence: for
   each home-aligned segment the dead node owned, the elected replica
   owner adopts physical memory, maps the segment, restores content
   from the bootstrap store plus its replica store (never from the dead
   DRAM), and the allocator + placement map retarget the range -- the
   switch-rule update.
4. **Resume** -- the switch reclaims every unacked frame it ever sent
   toward the dead node (checkpointed mid-traversal continuations *and*
   fresh submissions still retrying into the black hole), re-resolves
   each against the live map, and re-injects it at the new owner.
   Clients see elevated latency, not faults.

Known limitations (documented, asserted nowhere): a segment migrated
*after* a STORE was acknowledged strands that record's replicas on the
peers of its old home; one crash at a time; crash schedules must not
race migrations of the affected ranges.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.durability.replication import elect_owner
from repro.mem.translation import RangeEntry
from repro.placement.migration import MigrationEngine


class RecoveryError(Exception):
    """Recovery cannot re-home a dead node's range (capacity, TCAM)."""


class RecoveryManager:
    """Re-homes a dead node's ranges onto elected replica owners."""

    def __init__(self, service):
        self.service = service
        self.env = service.env
        self.memory = service.memory
        self.params = service.params
        registry = service.registry
        self._m_completed = registry.counter("recovery.completed")
        self._m_ranges = registry.counter("recovery.ranges_rehomed")
        self._m_bytes = registry.counter("recovery.bytes_replayed")
        self._g_ttr = registry.gauge("recovery.time_to_recover_ns")

    # -- the recovery schedule ----------------------------------------------
    def recover(self, dead: int):
        """Simulation process: detect, replay, fence, resume."""
        started = self.env.now
        yield self.env.timeout(self.params.failure_detect_ns)

        dead_node = self.memory.nodes[dead]
        segments = []
        for start, end in self.memory.placement.rules_of(dead):
            segments.extend(self._split_homes(start, end))
        pieces = []
        for start, end in segments:
            pieces.extend(MigrationEngine._mapped_pieces(
                dead_node.table.entries, start, end))
        replay_bytes = sum(end - start for start, end in pieces)
        replay_ns = (len(pieces) * self.params.replay_range_ns
                     + replay_bytes
                     / self.params.replay_bandwidth_bytes_per_ns)
        yield self.env.timeout(replay_ns)
        self._m_bytes.inc(replay_bytes)

        # The fence: no simulated time passes below, so traversals can
        # never observe a half-recovered segment.
        for start, end in segments:
            self._rehome(dead, start, end)
            self._m_ranges.inc()

        self._m_completed.inc()
        self._g_ttr.set(self.env.now - started)
        if self.service.switch is not None:
            self.service.switch.reinject(dead_node.name)

    # -- internals ----------------------------------------------------------
    def _split_homes(self, start: int, end: int) -> List[Tuple[int, int]]:
        """Cut one ownership rule at arithmetic home boundaries.

        Replica placement and owner election are keyed off a segment's
        arithmetic home, so a rule that coalesced across node boundaries
        recovers per home -- each sub-segment lands exactly where its
        records were replicated.
        """
        addrspace = self.memory.addrspace
        out = []
        cursor = start
        while cursor < end:
            home = addrspace.node_of(cursor)
            _home_start, home_end = addrspace.range_of(home)
            cut = min(end, home_end)
            out.append((cursor, cut))
            cursor = cut
        return out

    def _rehome(self, dead: int, virt_start: int, virt_end: int) -> None:
        """Adopt one home-aligned segment on the elected replica owner."""
        memory = self.memory
        allocator = memory.allocator
        dead_node = memory.nodes[dead]
        home = memory.addrspace.node_of(virt_start)
        owner = elect_owner(home, dead, memory.node_count,
                            self.service.live)
        if owner is None:
            raise RecoveryError(
                f"no live node can adopt [{virt_start:#x},{virt_end:#x}) "
                f"from dead node {dead}")
        dst_node = memory.nodes[owner]
        pieces = MigrationEngine._mapped_pieces(dead_node.table.entries,
                                                virt_start, virt_end)
        total = sum(end - start for start, end in pieces)
        if total and allocator.phys_available(owner) < total:
            raise RecoveryError(
                f"node {owner} lacks {total} physical bytes to adopt "
                f"[{virt_start:#x},{virt_end:#x})")
        if len(dst_node.table) + len(pieces) > dst_node.table.capacity:
            raise RecoveryError(
                f"node {owner} TCAM cannot hold {len(pieces)} more "
                "entries")
        if total:
            dst_phys = allocator.adopt_physical(owner, total)
        try:
            removed = dead_node.table.remove_range(virt_start, virt_end)
        except ValueError as exc:
            if total:
                allocator.release_physical(owner, dst_phys, total)
            raise RecoveryError(str(exc)) from exc
        inserted: List[RangeEntry] = []
        offset = 0
        for piece in removed:
            size = piece.virt_end - piece.virt_start
            # The dead DRAM is gone: zero-fill the adopted span (the
            # allocator may hand back a previously-used hole) and
            # rebuild content purely from the logged images below.
            dst_node.memory.write(dst_phys + offset, bytes(size))
            entry = RangeEntry(virt_start=piece.virt_start,
                               virt_end=piece.virt_end,
                               phys_start=dst_phys + offset,
                               perms=piece.perms)
            dst_node.table.insert(entry)
            inserted.append(entry)
            offset += size
        self._restore(dst_node, owner, inserted, virt_start, virt_end)
        allocator.transfer_ownership(virt_start, virt_end, dead, owner)
        memory.placement.move(virt_start, virt_end, owner)

    def _restore(self, dst_node, owner: int, inserted, virt_start: int,
                 virt_end: int) -> None:
        """Replay logged content onto the freshly mapped pieces.

        Bootstrap records (the functional build, identical in every
        process) first, then the owner's replica store (runtime STOREs
        in arrival order) -- later images of an address overwrite
        earlier ones, exactly redo semantics.
        """
        restored = self.service.nodes[owner]._m_restored
        for store in (self.service.bootstrap,
                      self.service.replicas[owner]):
            for _seq, vaddr, data in store.overlapping(virt_start,
                                                       virt_end):
                applied = False
                for entry in inserted:
                    clip_start = max(vaddr, entry.virt_start)
                    clip_end = min(vaddr + len(data), entry.virt_end)
                    if clip_start >= clip_end:
                        continue
                    dst_node.write_virt(
                        clip_start,
                        data[clip_start - vaddr:clip_end - vaddr])
                    applied = True
                if applied:
                    restored.inc()


class CrashInjector:
    """A deterministic kill schedule usable as a replicated factory.

    ``cluster.shard(replicated=(CrashInjector(node, at_ns),))`` runs the
    identical kill at the identical instant in every replica.  The
    injector applies the kill *locally* on purpose: the public
    ``cluster.kill_node`` broadcasts from the coordinator (workers see
    it at the next window), which a replicated factory must not mix
    with -- every replica is already running this schedule itself.
    """

    def __init__(self, node_id: int, at_ns: float):
        self.node_id = node_id
        self.at_ns = at_ns

    def __call__(self, cluster):
        def crash():
            yield cluster.env.timeout(self.at_ns)
            cluster._kill_node_local(self.node_id)
        return crash()
