"""Replica placement and the replica byte store.

Placement is purely arithmetic so every process in a sharded run (and
recovery, later) derives the identical layout without coordination:
a record's *home* is the arithmetic owner of its vaddr, its replica
targets are the first ``k - 1`` live nodes cyclically after the home
(skipping the writer itself), and the owner elected for a dead node's
home segment is the first live node cyclically after the home.  When
the writer *is* the arithmetic home -- the steady state -- the elected
owner is exactly the first replica target, so the node that wins the
election already holds the replicated content.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple


def replica_targets(home: int, writer: int, node_count: int,
                    live: Set[int], replication_factor: int
                    ) -> Tuple[int, ...]:
    """The ``k - 1`` live peers a record flushed by ``writer`` goes to."""
    targets: List[int] = []
    candidate = (home + 1) % node_count
    for _ in range(node_count):
        if len(targets) >= replication_factor - 1:
            break
        if candidate in live and candidate != writer:
            targets.append(candidate)
        candidate = (candidate + 1) % node_count
    return tuple(targets)


def elect_owner(home: int, dead: int, node_count: int,
                live: Set[int]) -> Optional[int]:
    """The live node adopting a dead node's segment homed at ``home``."""
    candidate = (home + 1) % node_count
    for _ in range(node_count):
        if candidate in live and candidate != dead:
            return candidate
        candidate = (candidate + 1) % node_count
    return None


class ReplicaStore:
    """Latest byte image per (vaddr, length), ordered by arrival.

    One store exists per node (everything replicated *onto* it) plus
    one cluster-wide bootstrap store capturing functional builds.
    ``overlapping`` returns records in apply order (arrival sequence),
    which recovery replays onto the re-homed range -- later images of
    the same address win, exactly the redo-log semantics.
    """

    def __init__(self):
        self._records: Dict[Tuple[int, int], Tuple[int, bytes]] = {}
        self._next_seq = 0

    def __len__(self) -> int:
        return len(self._records)

    def apply(self, vaddr: int, data: bytes) -> None:
        self._records[(vaddr, len(data))] = (self._next_seq, bytes(data))
        self._next_seq += 1

    def overlapping(self, virt_start: int, virt_end: int
                    ) -> List[Tuple[int, int, bytes]]:
        """``(seq, vaddr, data)`` for records touching the range."""
        out = []
        for (vaddr, size), (seq, data) in self._records.items():
            if vaddr < virt_end and virt_start < vaddr + size:
                out.append((seq, vaddr, data))
        out.sort()
        return out
