"""Live segment migration between memory nodes (three-phase protocol).

Moving a virtual-address segment while traversals are in flight uses the
primitives earlier PRs built, composed into three phases:

1. **Copy** -- the mapped bytes stream to the destination at a bounded
   migration bandwidth, chunk by chunk, *without* blocking traversals
   (the source keeps serving; writes during the copy are captured by the
   fence's final pass).
2. **Fence** -- at one simulated instant: the bytes are (re)copied into
   physical memory adopted on the destination, the source TCAM unmaps
   the range (one version bump -- every per-core TranslationCache
   invalidates, and in-flight iterations revalidate their held entry
   before using it), the destination TCAM maps it, the allocator
   transfers ownership accounting, and the shared
   :class:`~repro.placement.rangemap.PlacementMap` retargets the range
   (its version bump is the switch-rule update).
3. **Forwarding window** -- the old owner keeps a redirect hint: a
   straggler frame that raced the fence gets a ``MOVED`` reply, which
   the switch retries against the live map.  Hints expire after the
   window; later stragglers are caught by the accelerator's
   placement-map fallback (its "migration journal").

A drain is just a loop of migrations until the node owns nothing.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from repro.mem.allocator import AllocationError
from repro.mem.translation import RangeEntry
from repro.sim.trace import NullTracer


class MigrationError(Exception):
    """Invalid or unsatisfiable migration request."""


class MigrationEngine:
    """Copies segments between nodes under live traffic."""

    def __init__(self, env, memory, params, registry=None, tracer=None):
        self.env = env
        self.memory = memory
        self.rangemap = memory.placement
        self.params = params
        self.tracer = tracer if tracer is not None else NullTracer()
        self.in_flight = 0
        self.completed = 0
        self.bytes_migrated = 0
        #: live-allocation bytes moved by the most recent migration (the
        #: rebalancer's fill arithmetic works in live bytes, not mapped
        #: bytes, which also count freed-but-still-mapped blocks)
        self.last_live_bytes = 0
        self._registry = registry
        if registry is not None:
            self._m_migrations = registry.counter("placement.migrations")
            self._m_bytes = registry.counter("placement.bytes_migrated")
            self._m_failed = registry.counter("placement.migrations_failed")
            self._hist_ns = registry.histogram("placement.migration_ns")
            registry.gauge("placement.migrations_in_flight",
                           fn=lambda: self.in_flight)
            registry.gauge("placement.forward_hints",
                           fn=lambda: sum(len(n.forwarding)
                                          for n in self.memory.nodes))
        else:
            self._m_migrations = self._m_bytes = self._m_failed = None
            self._hist_ns = None

    # -- public API ---------------------------------------------------------
    def migrate(self, virt_start: int, virt_end: int, dst: int,
                include_unmapped: bool = False):
        """Simulation process: move [virt_start, virt_end) to node ``dst``.

        Returns (via StopIteration value) the number of mapped bytes
        moved.  The range is snapped outward to allocation boundaries so
        no allocation ever straddles two owners, and -- unless
        ``include_unmapped`` (a drain moving whole ownership rules) --
        clamped inward to the mapped span, so a source that keeps
        allocating never bump-allocates virtual addresses it no longer
        owns.
        """
        self.last_live_bytes = 0
        allocator = self.memory.allocator
        src = self.rangemap.node_of(virt_start)
        if src is None:
            raise MigrationError(
                f"unowned migration range start {virt_start:#x}")
        if not 0 <= dst < self.memory.node_count:
            raise MigrationError(f"no such destination node: {dst}")
        virt_start, virt_end = allocator.snap_range(src, virt_start,
                                                    virt_end)
        for start, end, owner in self.rangemap.rules():
            if start < virt_end and virt_start < end and owner != src:
                raise MigrationError(
                    f"[{virt_start:#x},{virt_end:#x}) spans owners "
                    f"{src} and {owner}; migrate per-owner sub-ranges")
        if src == dst:
            return 0

        src_node = self.memory.nodes[src]
        dst_node = self.memory.nodes[dst]
        pieces = self._mapped_pieces(src_node.table.entries,
                                     virt_start, virt_end)
        if not include_unmapped:
            if not pieces:
                return 0
            virt_start = pieces[0][0]
            virt_end = max(end for _start, end in pieces)
        total = sum(end - start for start, end in pieces)
        if total and allocator.phys_available(dst) < total:
            self._count_failed()
            raise MigrationError(
                f"node {dst} lacks {total} physical bytes for "
                f"[{virt_start:#x},{virt_end:#x})")
        if len(dst_node.table) + len(pieces) > dst_node.table.capacity:
            self._count_failed()
            raise MigrationError(
                f"node {dst} TCAM cannot hold {len(pieces)} more entries")

        started = self.env.now
        self.in_flight += 1
        self.tracer.record("placement", "migrate_start", (src, dst),
                           start=hex(virt_start), end=hex(virt_end),
                           bytes=total)
        try:
            # Phase 1: bandwidth-limited background copy.  Traversals
            # keep hitting the source; only the *time* is charged here --
            # the authoritative byte transfer happens at the fence, which
            # thereby also captures every write made during this phase.
            remaining = total
            while remaining > 0:
                step = min(self.params.copy_chunk_bytes, remaining)
                yield self.env.timeout(
                    step / self.params.migration_bandwidth_bytes_per_ns)
                remaining -= step

            # Phase 2: the fence.  No simulated time passes from here to
            # the end of the block, so traversal processes cannot observe
            # a half-moved segment.  The pre-copy checks above are stale
            # by now (allocations, frees, and other migrations ran during
            # the copy), so the fence re-validates everything itself and
            # raises -- with no state mutated -- when a check no longer
            # holds.  Every failure surfaces as MigrationError so callers
            # (the rebalancer loop) need to handle exactly one type.
            try:
                total, live, hint_id = self._fence(src, dst, virt_start,
                                                   virt_end)
            except MigrationError:
                self._count_failed()
                raise
            except (AllocationError, ValueError) as exc:
                self._count_failed()
                raise MigrationError(str(exc)) from exc
            self.last_live_bytes = live
        finally:
            self.in_flight -= 1

        # Phase 3: the forwarding window runs passively (the hint was
        # installed by the fence); schedule the expiry of exactly *this*
        # migration's hint.  Expiring by age would let this window's
        # sweep drop a younger overlapping migration's still-live hint.
        self.env.process(self._expire_hints(src_node, hint_id))

        self.completed += 1
        self.bytes_migrated += total
        if self._m_migrations is not None:
            self._m_migrations.inc()
            self._m_bytes.inc(total)
            self._hist_ns.record(self.env.now - started)
        self.tracer.record("placement", "migrate_done", (src, dst),
                           duration_ns=self.env.now - started)
        return total

    def drain(self, node_id: int,
              targets: Optional[Iterable[int]] = None):
        """Simulation process: migrate everything off ``node_id``.

        Marks the node non-allocatable first (no new placements land on
        it), then moves each owned rule to the least-filled candidate
        until the placement map holds no rules for the node -- at which
        point the switch will never route a new frame there, and only
        forwarding-window stragglers remain.  Returns total bytes moved.
        """
        allocator = self.memory.allocator
        allocator.set_allocatable(node_id, False)
        moved = 0
        while True:
            owned = self.rangemap.rules_of(node_id)
            if not owned:
                break
            start, end = owned[0]
            dst = self._pick_target(node_id, targets)
            if dst is None:
                raise MigrationError(
                    f"no node can absorb node {node_id}'s data")
            moved += yield from self.migrate(start, end, dst,
                                             include_unmapped=True)
        return moved

    # -- internals ----------------------------------------------------------
    def _fence(self, src: int, dst: int, virt_start: int,
               virt_end: int) -> Tuple[int, int, int]:
        """Atomic switch-over: bytes, TCAMs, allocator, map, hint.

        Returns ``(mapped_bytes, live_bytes, hint_id)``.  Failure-atomic:
        no simulated time passes inside the fence, so every check re-run
        at entry holds for the whole switch-over, all validation happens
        before the first destructive step, and the one resource acquired
        early (the destination's physical reservation) is released on
        any later failure -- a fence that raises leaves the cluster
        exactly as it was.
        """
        allocator = self.memory.allocator
        src_node = self.memory.nodes[src]
        dst_node = self.memory.nodes[dst]
        # Frees during the copy can merge blocks across the snapped
        # boundary; re-snap so nothing straddles the ownership edge
        # (this is what lets transfer_ownership below never fail).
        virt_start, virt_end = allocator.snap_range(src, virt_start,
                                                    virt_end)
        pieces = self._mapped_pieces(src_node.table.entries,
                                     virt_start, virt_end)
        total = sum(end - start for start, end in pieces)
        if total and allocator.phys_available(dst) < total:
            raise MigrationError(
                f"node {dst} filled up during copy: lacks {total} "
                f"physical bytes for [{virt_start:#x},{virt_end:#x})")
        if len(dst_node.table) + len(pieces) > dst_node.table.capacity:
            raise MigrationError(
                f"node {dst} TCAM cannot hold {len(pieces)} more entries")
        if total:
            dst_phys = allocator.adopt_physical(dst, total)
        try:
            removed = src_node.table.remove_range(virt_start, virt_end)
        except ValueError as exc:
            # Splitting partially covered source entries would overflow
            # the source TCAM; remove_range mutated nothing, so only the
            # reservation needs unwinding.
            if total:
                allocator.release_physical(dst, dst_phys, total)
            raise MigrationError(str(exc)) from exc
        if total:
            offset = 0
            for piece in removed:
                size = piece.virt_end - piece.virt_start
                data = src_node.memory.read(piece.phys_start, size)
                dst_node.memory.write(dst_phys + offset, data)
                dst_node.table.insert(RangeEntry(
                    virt_start=piece.virt_start,
                    virt_end=piece.virt_end,
                    phys_start=dst_phys + offset,
                    perms=piece.perms))
                allocator.release_physical(src, piece.phys_start, size)
                offset += size
        live = allocator.transfer_ownership(virt_start, virt_end, src,
                                            dst)
        self.rangemap.move(virt_start, virt_end, dst)
        hint_id = src_node.forwarding.install(virt_start, virt_end, dst,
                                              self.env.now)
        return total, live, hint_id

    def _expire_hints(self, node, hint_id: int):
        yield self.env.timeout(self.params.forward_window_ns)
        node.forwarding.remove(hint_id)

    def _pick_target(self, node_id: int,
                     targets: Optional[Iterable[int]]) -> Optional[int]:
        allocator = self.memory.allocator
        if targets is not None:
            candidates = [t for t in targets if t != node_id]
        else:
            candidates = [
                n for n in range(self.memory.node_count)
                if n != node_id and allocator.is_allocatable(n)
            ]
        fills = allocator.node_fill_fractions()
        candidates.sort(key=lambda n: fills[n])
        return candidates[0] if candidates else None

    @staticmethod
    def _mapped_pieces(entries, virt_start: int,
                       virt_end: int) -> List[Tuple[int, int]]:
        """Entry coverage clipped to [virt_start, virt_end)."""
        pieces = []
        for entry in entries:
            if entry.virt_end <= virt_start or virt_end <= entry.virt_start:
                continue
            pieces.append((max(entry.virt_start, virt_start),
                           min(entry.virt_end, virt_end)))
        return pieces

    def _count_failed(self) -> None:
        if self._m_failed is not None:
            self._m_failed.inc()
