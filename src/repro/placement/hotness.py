"""Per-segment access-heat tracking for the rebalancer.

The accelerator's memory-access pipeline calls :meth:`HotnessTracker.
sample` once per iteration; the tracker keeps an EWMA-decayed access
count per fixed-size virtual segment.  Sampling is probabilistic
1-in-``sample_period``: each access is taken with probability
``1/sample_period`` via a seeded geometric skip (each taken sample is
weighted by the period, so the estimate stays unbiased) -- hardware
would do exactly this with a count-min sketch or sampled mirroring
rather than touch SRAM on every access.  A *deterministic* countdown
would systematically mis-sample any access pattern whose period divides
``sample_period`` (e.g. a strided scan interleaved across segments),
skewing rebalancer decisions; the geometric skip has no phase to lock
onto while staying deterministic per run seed.

Decay is applied lazily: a segment's count is scaled by
``0.5 ** (elapsed / halflife)`` whenever it is read or written, so idle
segments cool without a background sweep.  ``placement.hot.*`` gauges
export the rack-wide view.

Besides per-segment heat, the tracker samples **successor edges**: when
a taken sample's load follows a load in a *different* segment within the
same traversal, the (undirected) segment pair gains weight.  The edge
map is the *segment-affinity graph* -- edge weight estimates how often a
traversal steps from one segment to the other, and an edge whose two
endpoints live on different memory nodes is a **cut edge**, i.e. one
switch hop plus a transport checkpoint per traversal that crosses it.
Edges ride the same geometric skip, the same ``weight=sample_period``
unbiasing, the same lazy decay, and the same epsilon prune as segments.

Sampling state is **per memory node**: each accelerator samples into its
own :meth:`HotnessTracker.node_view` -- a child tracker with a private
RNG stream seeded from ``(run seed, node id)`` and private segment/edge
maps.  The parent tracker aggregates across its views for every read
(gauges, rebalancer queries), so consumers see one rack-wide heat map.
Per-node streams are what make sharded execution byte-identical to the
in-process run: a worker process advances exactly the views of the
nodes it owns, drawing the identical skips the in-process run draws for
those nodes, and the merged ``placement.hot.*`` gauges sum per-worker
contributions in the same node order the in-process aggregate uses.
"""

from __future__ import annotations

import math
import random
from typing import Callable, Dict, List, Tuple


class HotnessTracker:
    """EWMA-decayed per-segment access counts over virtual addresses."""

    #: a decayed count below this is dead -- the segment is forgotten.
    #: Recorded weights are >= 1.0, so anything this cold has decayed
    #: through ~10 halflives; dropping it keeps the map bounded by the
    #: *warm* footprint instead of growing with every segment ever
    #: touched (hot_segments() sorts the whole map on each gauge read
    #: and rebalance round).
    PRUNE_EPSILON = 1e-3
    #: amortized sweep period: one full prune per this many record()s
    PRUNE_PERIOD = 4096

    def __init__(self, segment_bytes: int, halflife_ns: float,
                 clock: Callable[[], float], sample_period: int = 8,
                 seed: int = 0, stream: str = "hotness"):
        if segment_bytes < 1 or (segment_bytes & (segment_bytes - 1)):
            raise ValueError("segment_bytes must be a power of two")
        if halflife_ns <= 0:
            raise ValueError("halflife must be positive")
        if sample_period < 1:
            raise ValueError("sample_period must be >= 1")
        self.segment_bytes = segment_bytes
        self.halflife_ns = halflife_ns
        self.sample_period = sample_period
        self.clock = clock
        self._seed = seed
        #: skip-length source, deterministic per (run seed, stream label)
        self._rng = random.Random(f"{seed}:{stream}")
        self._countdown = self._draw_skip()
        #: segment start -> (decayed count, last decay timestamp)
        self._segments: Dict[int, Tuple[float, float]] = {}
        #: (seg_lo, seg_hi) -> (decayed weight, last decay timestamp);
        #: the sampled segment-affinity graph, undirected
        self._edges: Dict[Tuple[int, int], Tuple[float, float]] = {}
        self._own_samples = 0
        self._own_edge_samples = 0
        #: node id -> child tracker with a private RNG stream; samples
        #: recorded through a view show up in every aggregate read here
        self._views: Dict[int, "HotnessTracker"] = {}
        self._until_prune = self.PRUNE_PERIOD

    def node_view(self, node_id: int) -> "HotnessTracker":
        """The per-node child tracker accelerator ``node_id`` samples into.

        Created on first request with an RNG stream seeded from
        ``(run seed, node id)`` -- a worker process that only ever
        advances its own nodes' views draws exactly the skips the
        in-process run draws for those nodes.
        """
        view = self._views.get(node_id)
        if view is None:
            view = HotnessTracker(self.segment_bytes, self.halflife_ns,
                                  self.clock,
                                  sample_period=self.sample_period,
                                  seed=self._seed,
                                  stream=f"hotness:{node_id}")
            self._views[node_id] = view
        return view

    def _sources(self):
        """This tracker's own maps, then every view in node order."""
        yield self
        for node_id in sorted(self._views):
            yield self._views[node_id]

    @property
    def samples(self) -> int:
        return sum(src._own_samples for src in self._sources())

    @property
    def edge_samples(self) -> int:
        return sum(src._own_edge_samples for src in self._sources())

    def _draw_skip(self) -> int:
        """Accesses until the next taken sample, Geometric(1/period).

        Inverse-CDF draw: equivalent to flipping an i.i.d.
        Bernoulli(1/period) coin per access, so E[taken fraction] =
        1/period for *every* access pattern -- no phase for a strided
        workload to lock onto.  ``sample_period=1`` degenerates to
        sampling every access (skip is always 1).
        """
        if self.sample_period == 1:
            return 1
        p = 1.0 / self.sample_period
        u = 1.0 - self._rng.random()  # u in (0, 1]
        return 1 + int(math.log(u) / math.log(1.0 - p))

    def __len__(self) -> int:
        return sum(len(src._segments) for src in self._sources())

    def _segment_of(self, vaddr: int) -> int:
        return vaddr & ~(self.segment_bytes - 1)

    def _decayed(self, count: float, since: float, now: float) -> float:
        if now <= since:
            return count
        return count * 0.5 ** ((now - since) / self.halflife_ns)

    def sample(self, vaddr: int, prev: int = 0) -> None:
        """Maybe-record one access (1-in-``sample_period`` sampling).

        ``prev`` is the traversal's previous load address (0 = none,
        i.e. this is the traversal's first load).  When the sample is
        taken and ``prev`` falls in a different segment, the successor
        edge (prev's segment, vaddr's segment) gains the same unbiased
        ``sample_period`` weight.
        """
        self._countdown -= 1
        if self._countdown > 0:
            return
        self._countdown = self._draw_skip()
        self.record(vaddr, weight=float(self.sample_period))
        if prev:
            self.record_edge(prev, vaddr, weight=float(self.sample_period))

    def sample_many(self, vaddrs, prevs=None) -> None:
        """Advance the geometric-skip countdown across a whole batch.

        Exactly equivalent to calling :meth:`sample` once per address in
        order (same skips from the same RNG stream), but O(samples
        taken) instead of O(addresses) -- the batch tier touches one
        lane-address vector per lockstep LOAD.  ``prevs``, if given, is
        the per-lane previous load address aligned with ``vaddrs``.
        """
        remaining = len(vaddrs)
        position = 0
        while 0 < self._countdown <= remaining:
            position += self._countdown
            remaining -= self._countdown
            self._countdown = self._draw_skip()
            self.record(int(vaddrs[position - 1]),
                        weight=float(self.sample_period))
            prev = int(prevs[position - 1]) if prevs is not None else 0
            if prev:
                self.record_edge(prev, int(vaddrs[position - 1]),
                                 weight=float(self.sample_period))
        self._countdown -= remaining

    def record(self, vaddr: int, weight: float = 1.0) -> None:
        """Unconditionally add ``weight`` accesses to vaddr's segment."""
        now = self.clock()
        segment = self._segment_of(vaddr)
        count, since = self._segments.get(segment, (0.0, now))
        self._segments[segment] = (
            self._decayed(count, since, now) + weight, now)
        self._own_samples += 1
        self._until_prune -= 1
        if self._until_prune <= 0:
            self._until_prune = self.PRUNE_PERIOD
            self._prune(now)

    def record_edge(self, prev_vaddr: int, vaddr: int,
                    weight: float = 1.0) -> None:
        """Unconditionally weight the successor edge between the two
        addresses' segments (no-op for a same-segment step: an internal
        step can never be a cut edge, so it carries no placement signal).
        """
        a = self._segment_of(prev_vaddr)
        b = self._segment_of(vaddr)
        if a == b:
            return
        key = (a, b) if a < b else (b, a)
        now = self.clock()
        count, since = self._edges.get(key, (0.0, now))
        self._edges[key] = (self._decayed(count, since, now) + weight, now)
        self._own_edge_samples += 1

    def edge_weight(self, vaddr_a: int, vaddr_b: int) -> float:
        """Current decayed weight of the edge between two segments."""
        return sum(src._own_edge_weight(vaddr_a, vaddr_b)
                   for src in self._sources())

    def _own_edge_weight(self, vaddr_a: int, vaddr_b: int) -> float:
        a = self._segment_of(vaddr_a)
        b = self._segment_of(vaddr_b)
        key = (a, b) if a < b else (b, a)
        if key not in self._edges:
            return 0.0
        count, since = self._edges[key]
        return self._decayed(count, since, self.clock())

    def _own_hot_edges(self) -> List[Tuple[int, int, float]]:
        """This instance's edges only; prunes cold ones as a side effect."""
        now = self.clock()
        ranked: List[Tuple[int, int, float]] = []
        dead: List[Tuple[int, int]] = []
        for (a, b), (count, since) in self._edges.items():
            current = self._decayed(count, since, now)
            if current < self.PRUNE_EPSILON:
                dead.append((a, b))
            else:
                ranked.append((a, b, current))
        for key in dead:
            del self._edges[key]
        ranked.sort(key=lambda item: (-item[2], item[0], item[1]))
        return ranked

    def hot_edges(self, top_n: int = 0) -> List[Tuple[int, int, float]]:
        """(seg_a, seg_b, decayed weight) triples, heaviest first.

        Aggregated across the per-node views (weights for the same
        segment pair sum); cold edges (below :data:`PRUNE_EPSILON`) are
        dropped as a side effect, mirroring :meth:`hot_segments`.
        """
        if not self._views:
            ranked = self._own_hot_edges()
            return ranked[:top_n] if top_n else ranked
        merged: Dict[Tuple[int, int], float] = {}
        for src in self._sources():
            for a, b, weight in src._own_hot_edges():
                merged[(a, b)] = merged.get((a, b), 0.0) + weight
        ranked = [(a, b, weight) for (a, b), weight in merged.items()]
        ranked.sort(key=lambda item: (-item[2], item[0], item[1]))
        return ranked[:top_n] if top_n else ranked

    def adjacency(self) -> Dict[int, Dict[int, float]]:
        """Segment -> {neighbor segment -> decayed edge weight}.

        The rebalancer's working view of the affinity graph; built from
        :meth:`hot_edges` so it also prunes cold edges.
        """
        graph: Dict[int, Dict[int, float]] = {}
        for a, b, weight in self.hot_edges():
            graph.setdefault(a, {})[b] = weight
            graph.setdefault(b, {})[a] = weight
        return graph

    def external_weight(self, vaddr: int, rangemap) -> float:
        """Summed weight of this segment's cut edges (neighbors owned by
        a different node under ``rangemap``)."""
        segment = self._segment_of(vaddr)
        owner = rangemap.node_of(segment)
        total = 0.0
        for a, b, weight in self.hot_edges():
            if a == segment or b == segment:
                other = b if a == segment else a
                if rangemap.node_of(other) != owner:
                    total += weight
        return total

    def heat_of(self, vaddr: int) -> float:
        """Current decayed count of the segment containing ``vaddr``."""
        return sum(src._own_heat_of(vaddr) for src in self._sources())

    def _own_heat_of(self, vaddr: int) -> float:
        segment = self._segment_of(vaddr)
        if segment not in self._segments:
            return 0.0
        count, since = self._segments[segment]
        return self._decayed(count, since, self.clock())

    def _own_hot_segments(self) -> List[Tuple[int, float]]:
        """This instance's segments only; prunes cold ones on the way."""
        now = self.clock()
        ranked: List[Tuple[int, float]] = []
        dead: List[int] = []
        for segment, (count, since) in self._segments.items():
            current = self._decayed(count, since, now)
            if current < self.PRUNE_EPSILON:
                dead.append(segment)
            else:
                ranked.append((segment, current))
        for segment in dead:
            del self._segments[segment]
        ranked.sort(key=lambda item: -item[1])
        return ranked

    def hot_segments(self, top_n: int = 0) -> List[Tuple[int, float]]:
        """(segment_start, decayed_count) pairs, hottest first.

        Aggregated across the per-node views (counts for the same
        segment sum); segments that have decayed below
        :data:`PRUNE_EPSILON` are dropped from their map as a side
        effect, so repeated calls stay proportional to the warm
        footprint.
        """
        if not self._views:
            ranked = self._own_hot_segments()
            return ranked[:top_n] if top_n else ranked
        merged: Dict[int, float] = {}
        for src in self._sources():
            for segment, heat in src._own_hot_segments():
                merged[segment] = merged.get(segment, 0.0) + heat
        ranked = sorted(merged.items(), key=lambda item: (-item[1], item[0]))
        return ranked[:top_n] if top_n else ranked

    def _prune(self, now: float) -> None:
        """Forget segments and edges whose decayed count has gone cold."""
        dead = [segment
                for segment, (count, since) in self._segments.items()
                if self._decayed(count, since, now) < self.PRUNE_EPSILON]
        for segment in dead:
            del self._segments[segment]
        dead_edges = [key
                      for key, (count, since) in self._edges.items()
                      if self._decayed(count, since, now)
                      < self.PRUNE_EPSILON]
        for key in dead_edges:
            del self._edges[key]

    def node_heat(self, rangemap) -> Dict[int, float]:
        """Decayed counts summed per owning node (via the placement map).

        Accumulated source by source in node-view order, so the
        floating-point addition order matches the sharded merge (which
        sums per-worker gauge values in the same sorted node order).
        """
        totals: Dict[int, float] = {}
        for src in self._sources():
            for segment, heat in src._own_hot_segments():
                owner = rangemap.node_of(segment)
                if owner is not None:
                    totals[owner] = totals.get(owner, 0.0) + heat
        return totals

    def _own_peak(self) -> float:
        ranked = self._own_hot_segments()
        return ranked[0][1] if ranked else 0.0

    def attach_metrics(self, registry) -> None:
        registry.gauge("placement.hot.segments", fn=lambda: len(self))
        registry.gauge("placement.hot.samples", fn=lambda: self.samples)
        registry.gauge("placement.hot.edges",
                       fn=lambda: sum(len(src._edges)
                                      for src in self._sources()))
        registry.gauge("placement.hot.edge_samples",
                       fn=lambda: self.edge_samples)

        def peak() -> float:
            # max over per-view peaks (not the peak of the summed map):
            # the sharded merge takes the max of per-worker gauge
            # values, which is exactly this quantity.
            return max(src._own_peak() for src in self._sources())

        registry.gauge("placement.hot.peak", fn=peak)
