"""The placement control loop: watch fill + heat, schedule migrations.

A background simulation process wakes every ``rebalance_interval_ns``
and asks three questions, in priority order:

1. **Fill imbalance** -- is the gap between the fullest and emptiest
   allocatable node's fill fraction above the threshold?  If so, shed
   the *coldest* mapped segments of the donor (moving cold data evens
   capacity without perturbing the hot set) until roughly half the gap
   is closed.
2. **Hotness skew** -- is one node's decayed access heat more than
   ``hot_skew_threshold`` times the active-node mean?  If so, move its
   *hottest* segments to the coldest node, spreading the serving load.
3. **Cut edges** -- with fill and heat both quiet, are traversals still
   crossing nodes?  The tracker's sampled *successor edges* form a
   segment-affinity graph; an edge whose endpoints live on different
   nodes is a cut edge, costing one switch hop plus a transport
   checkpoint per crossing.  Greedily move the segment with the largest
   affinity gain (external edge weight recovered minus internal edge
   weight newly cut) next to its heaviest neighbors, widened to its
   covering chain arena extent so a chain moves whole.  Guarded so a
   move never opens a fill gap the fill phase would immediately revert.

All paths bound work per round (``migrations_per_round``) so the loop
never floods the fabric with copies; convergence happens over rounds.
This is also what makes ``cluster.add_node()`` useful: the new node
starts empty and cold, so the very next rounds migrate data onto it.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.mem.allocator import AllocationError
from repro.placement.migration import MigrationError


class Rebalancer:
    """Periodic fill/heat watcher driving the migration engine."""

    def __init__(self, env, engine, tracker, params, registry=None):
        self.env = env
        self.engine = engine
        self.tracker = tracker
        self.params = params
        self.memory = engine.memory
        self.rangemap = engine.rangemap
        self.rounds = 0
        self.migrations = 0
        self.cut_moves = 0
        self._running = False
        self._proc = None
        if registry is not None:
            registry.gauge("placement.rebalance.rounds",
                           fn=lambda: self.rounds)
            registry.gauge("placement.rebalance.migrations",
                           fn=lambda: self.migrations)
            registry.gauge("placement.rebalance.cut_moves",
                           fn=lambda: self.cut_moves)

    # -- lifecycle ----------------------------------------------------------
    @property
    def running(self) -> bool:
        return self._running

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._proc = self.env.process(self._loop())

    def stop(self) -> None:
        self._running = False

    def _loop(self):
        while self._running:
            yield self.env.timeout(self.params.rebalance_interval_ns)
            if not self._running:
                return
            try:
                yield from self.rebalance_once()
            except (MigrationError, AllocationError, ValueError):
                # A target filled up mid-plan, or a fence-time check
                # failed.  The engine normalizes its failures to
                # MigrationError, but a rebalancer that dies silently
                # disables itself for the rest of the run, so be
                # defensive and also absorb raw allocator/TCAM errors;
                # try again next round with fresh fill fractions.
                continue

    # -- one round ----------------------------------------------------------
    def rebalance_once(self):
        """Simulation process body: one observe-decide-migrate round."""
        self.rounds += 1
        allocator = self.memory.allocator
        active = [n for n in range(self.memory.node_count)
                  if allocator.is_allocatable(n)]
        if len(active) < 2:
            return 0
        fills = allocator.node_fill_fractions()
        donor = max(active, key=lambda n: fills[n])
        receiver = min(active, key=lambda n: fills[n])
        if (fills[donor] - fills[receiver]
                > self.params.fill_imbalance_threshold):
            gap_bytes = (allocator.allocated_bytes(donor)
                         - allocator.allocated_bytes(receiver))
            moved = yield from self._shed(donor, receiver, gap_bytes,
                                          prefer_cold=True,
                                          contract_gap=True)
            return moved

        heat = self.tracker.node_heat(self.rangemap)
        if heat:
            active_heat = {n: heat.get(n, 0.0) for n in active}
            mean = sum(active_heat.values()) / len(active)
            if mean > 0:
                hottest = max(active, key=lambda n: active_heat[n])
                if (active_heat[hottest] / mean
                        >= self.params.hot_skew_threshold):
                    coldest = min(active, key=lambda n: active_heat[n])
                    moved = yield from self._shed(
                        hottest, coldest,
                        (self.params.migrations_per_round
                         * self.params.segment_bytes),
                        prefer_cold=False)
                    return moved

        if getattr(self.params, "cut_edge_objective", False):
            moved = yield from self._cut_phase(active, fills)
            return moved
        return 0

    def _cut_phase(self, active, fills):
        """Co-locate affine segments: greedy cut-edge contraction.

        For every segment incident to a cut edge, the *gain* of moving
        it to a neighbor-owning node is the decayed edge weight it would
        turn internal minus the weight it would newly cut.  Apply the
        best strictly-positive gains (``cut_min_gain`` floors the churn)
        up to ``migrations_per_round``, widening each move to the
        segment's covering chain-arena extent so chains travel whole.
        """
        adjacency = self.tracker.adjacency()
        if not adjacency:
            return 0
        allocator = self.memory.allocator
        active_set = set(active)
        segment_bytes = self.params.segment_bytes
        capacity = self.memory.addrspace.node_capacity
        min_fill = min(fills[n] for n in active)
        plans = []  # (-gain, segment, target)
        for segment, neighbors in adjacency.items():
            home = self.rangemap.node_of(segment)
            if home is None or home not in active_set:
                continue
            per_node = {}
            for other, weight in neighbors.items():
                owner = self.rangemap.node_of(other)
                if owner is not None:
                    per_node[owner] = per_node.get(owner, 0.0) + weight
            internal = per_node.get(home, 0.0)
            for target, external in per_node.items():
                if target == home or target not in active_set:
                    continue
                gain = external - internal
                if gain <= self.params.cut_min_gain:
                    continue
                plans.append((-gain, segment, target))
        # Deterministic greedy order: best gain first, then segment id.
        plans.sort()
        launched = 0
        moved = 0
        done = set()
        for _neg_gain, segment, target in plans:
            if launched >= self.params.migrations_per_round:
                break
            # Revalidate the gain against *current* ownership: an
            # earlier move this round may have already pulled this
            # segment's neighbors over (or moved the segment itself).
            # Without this, two mutually-affine segments on different
            # nodes both plan a move toward each other, swap places,
            # and ping-pong forever; with it every applied move
            # strictly shrinks the total cut weight, so the greedy
            # loop terminates.
            home = self.rangemap.node_of(segment)
            if home is None or home not in active_set or home == target:
                continue
            internal = 0.0
            external = 0.0
            for other, weight in adjacency.get(segment, {}).items():
                owner = self.rangemap.node_of(other)
                if owner == home:
                    internal += weight
                elif owner == target:
                    external += weight
            if external - internal <= self.params.cut_min_gain:
                continue
            start, end = segment, segment + segment_bytes
            extent = allocator.arena_extent_of(segment)
            if extent is not None:
                # Ship the whole chain arena extent with its segment.
                start = min(start, extent[0])
                end = max(end, extent[1])
            if (start, end) in done:
                continue
            done.add((start, end))
            # The widened span must still be wholly donor-owned (an
            # earlier shear can split an extent across owners).
            owners = {self.rangemap.node_of(x)
                      for x in range(start, end, segment_bytes)}
            owners.add(self.rangemap.node_of(end - 1))
            if owners != {home}:
                continue
            # Fill guard: never open a gap the fill phase would revert.
            grown = fills[target] + (end - start) / capacity
            if grown - min_fill > self.params.fill_imbalance_threshold:
                continue
            launched += 1
            mapped = yield from self.engine.migrate(start, end, target)
            self.migrations += 1
            self.cut_moves += 1
            moved += mapped
            fills = allocator.node_fill_fractions()
            min_fill = min(fills[n] for n in active)
        return moved

    def _shed(self, donor: int, receiver: int, want_bytes: int,
              prefer_cold: bool, contract_gap: bool = False):
        """Migrate up to ``migrations_per_round`` donor segments.

        With ``contract_gap``, ``want_bytes`` is the donor-receiver
        allocation gap and every move must strictly shrink it: moving
        ``s`` bytes turns a gap ``g`` into ``|g - 2s|``, so a piece is
        only shipped while ``s < g``.  Without the guard a segment
        larger than half the gap overshoots, inverts the imbalance, and
        the next round ships the same bytes straight back -- a
        ping-pong that never converges.  The gap is measured in *live*
        bytes, so the arithmetic sizes pieces and credits moves in live
        bytes too -- migrate's mapped-byte total also counts
        freed-but-still-mapped blocks, which do not move the fill needle
        and would fake progress while the gap stays open.
        """
        allocator = self.memory.allocator
        moved = 0
        launched = 0
        for start, end in self._candidates(donor, prefer_cold):
            if moved >= want_bytes:
                break
            if launched >= self.params.migrations_per_round:
                break
            if contract_gap:
                remaining_gap = want_bytes - 2 * moved
                if remaining_gap <= 0:
                    break
                piece_live = allocator.live_bytes_in(start, end)
                if piece_live == 0:
                    # Purely freed space: moving it cannot close a fill
                    # gap, only churn the fabric.
                    continue
                if piece_live >= remaining_gap:
                    # Too coarse for what's left of the gap; a smaller
                    # tail piece later in the list may still fit.
                    continue
            launched += 1
            mapped = yield from self.engine.migrate(start, end, receiver)
            self.migrations += 1
            moved += (self.engine.last_live_bytes if contract_gap
                      else mapped)
        return moved

    def _candidates(self, donor: int,
                    prefer_cold: bool) -> List[Tuple[int, int]]:
        """Donor-owned mapped segments, scored by (heat, external-edge
        weight), tie-broken by segment id.

        The heat phase moves hot pieces first and, among equals, the
        ones with the most *cut-edge* weight -- moving those both sheds
        load and removes switch hops.  The cold/fill phase prefers cold
        pieces with *low* external affinity, so evening capacity avoids
        shearing a chain away from its traversal neighbors.  The segment
        id tie-break makes each round's plan reproducible across
        sharded and unsharded runs (dict/scan order must not decide).
        """
        segment = self.params.segment_bytes
        spans: List[Tuple[float, float, int, int]] = []
        owned = self.rangemap.rules_of(donor)
        table = self.memory.nodes[donor].table
        adjacency = self.tracker.adjacency()

        def external(vaddr: int) -> float:
            seg_start = self.tracker._segment_of(vaddr)
            home = self.rangemap.node_of(seg_start)
            return sum(
                weight
                for other, weight in adjacency.get(seg_start, {}).items()
                if self.rangemap.node_of(other) != home)

        for entry in table.entries:
            for rule_start, rule_end in owned:
                start = max(entry.virt_start, rule_start)
                end = min(entry.virt_end, rule_end)
                if start >= end:
                    continue
                # Slice large entries at segment granularity so one
                # migration stays small and bounded.
                cursor = start
                while cursor < end:
                    piece_end = min(cursor + segment, end)
                    heat = self.tracker.heat_of(cursor)
                    ext = external(cursor)
                    spans.append((heat, ext, cursor, piece_end))
                    cursor = piece_end
        if prefer_cold:
            spans.sort(key=lambda item: (item[0], item[1], item[2]))
        else:
            spans.sort(key=lambda item: (-item[0], -item[1], item[2]))
        return [(start, end) for _heat, _ext, start, end in spans]
