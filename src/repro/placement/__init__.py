"""Elastic placement: hotness tracking, live migration, rebalancing.

The paper's rack (section 5) partitions the virtual address space
statically; this package makes *where data lives* a live, adjustable
decision.  See docs/architecture.md, "Placement & migration".

Only the dependency-free leaves are exported here; importing
:class:`~repro.placement.service.PlacementService` (which pulls in the
memory layer) is done explicitly from ``repro.placement.service`` to
keep ``repro.mem`` -> ``repro.placement.rangemap`` import-cycle free.
"""

from repro.placement.hotness import HotnessTracker
from repro.placement.rangemap import PlacementError, PlacementMap

__all__ = [
    "HotnessTracker",
    "PlacementError",
    "PlacementMap",
]
