"""Wiring for the placement subsystem: tracker + engine + rebalancer.

:class:`PlacementService` is what :class:`~repro.core.cluster.
PulseCluster` instantiates; it owns the three cooperating parts of
elastic placement and exposes the cluster-facing verbs (migrate, drain,
rebalance) as simulation processes.
"""

from __future__ import annotations

from repro.placement.hotness import HotnessTracker
from repro.placement.migration import MigrationEngine
from repro.placement.rebalancer import Rebalancer


class PlacementService:
    """One rack's elastic-placement stack."""

    def __init__(self, env, memory, params, registry, tracer=None,
                 seed: int = 0):
        placement = params.placement  # SystemParams -> PlacementParams
        self.env = env
        self.memory = memory
        self.params = placement
        self.registry = registry
        self.rangemap = memory.placement
        self.tracker = HotnessTracker(
            segment_bytes=placement.segment_bytes,
            halflife_ns=placement.hot_halflife_ns,
            clock=lambda: env.now,
            sample_period=placement.sample_period,
            seed=seed)
        self.engine = MigrationEngine(env, memory, placement,
                                      registry=registry, tracer=tracer)
        self.rebalancer = Rebalancer(env, self.engine, self.tracker,
                                     placement, registry=registry)
        self.tracker.attach_metrics(registry)
        for node_id in range(memory.node_count):
            self._register_heat_gauge(node_id)

    def _register_heat_gauge(self, node_id: int) -> None:
        self.registry.gauge(
            f"placement.hot.mem{node_id}",
            fn=lambda: self.tracker.node_heat(self.rangemap)
                           .get(node_id, 0.0))

    # -- accelerator hookup -------------------------------------------------
    def attach_accelerator(self, accelerator) -> None:
        """Feed the tracker from this accelerator's memory pipeline and
        give its miss path the shared map (its migration journal).

        Each accelerator samples into its node's private view (own RNG
        stream seeded from the node id), so a sharded worker that only
        executes its own nodes draws the identical skips the in-process
        run draws -- ``placement.hot.*`` stays byte-identical either way.
        """
        accelerator.hotness = self.tracker.node_view(
            accelerator.node.node_id)
        accelerator.placement_map = self.rangemap

    def on_node_added(self, node_id: int) -> None:
        self._register_heat_gauge(node_id)

    # -- cluster-facing verbs ------------------------------------------------
    def migrate(self, virt_start: int, virt_end: int, dst: int):
        """Launch a live migration; returns the simulation process."""
        return self.env.process(
            self.engine.migrate(virt_start, virt_end, dst))

    def drain_node(self, node_id: int):
        """Launch a drain of ``node_id``; returns the simulation process."""
        return self.env.process(self.engine.drain(node_id))

    def rebalance_once(self):
        """Run one observe-decide-migrate round as a process."""
        return self.env.process(self.rebalancer.rebalance_once())

    def start_rebalancer(self) -> None:
        self.rebalancer.start()

    def stop_rebalancer(self) -> None:
        self.rebalancer.stop()
