"""The mutable, versioned ownership map: which node serves which range.

The paper's switch (section 5) holds one immutable range rule per memory
node -- the arithmetic partition of :class:`~repro.mem.addrspace.
AddressSpace`.  Elastic placement keeps that map as the *initial* state
but makes it mutable: a live migration carves a sub-range out of its
home rule and points it at the new owner.  The map is shared by the
switch (packet routing), :class:`~repro.mem.node.GlobalMemory`
(functional reads/writes), and the allocator (``free()`` must credit the
current owner), so one ``move()`` retargets every layer at one simulated
instant.

``version`` counts rule updates.  It is the switch-level analogue of the
TCAM's version counter: observers that cache routing decisions can
detect staleness with one comparison.
"""

from __future__ import annotations

import bisect
from typing import List, Optional, Tuple


class PlacementError(Exception):
    """Invalid placement-map mutation."""


class PlacementMap:
    """Sorted, non-overlapping (start, end, owner) rules with a version.

    Rules partition exactly the address ranges the backing
    :class:`~repro.mem.addrspace.AddressSpace` defines; lookups outside
    them return None (unroutable, e.g. NULL).  Adjacent same-owner rules
    are coalesced, so a freshly built map has exactly one rule per node
    -- the invariant section 6 of the paper counts on -- and the rule
    count only grows while placement actually diverges from the
    arithmetic partition.
    """

    def __init__(self, addrspace):
        self.addrspace = addrspace
        self._starts: List[int] = []
        self._rules: List[Tuple[int, int, int]] = []
        self.version = 0
        #: move() observers: fn(virt_start, virt_end, new_owner, version)
        self._subscribers: List = []
        for start, end, node_id in addrspace.switch_rules():
            self._rules.append((start, end, node_id))
        self._rules.sort()
        self._starts = [r[0] for r in self._rules]

    def subscribe(self, callback) -> None:
        """Register a ``move()`` observer.

        Called *after* the rules and version update, with
        ``(virt_start, virt_end, new_owner, version)`` -- how cached
        routing state (e.g. a client's split-index directory) learns to
        drop entries for a migrated range at the migration's fence
        instant rather than on the first stale NACK.
        """
        self._subscribers.append(callback)

    @property
    def rule_count(self) -> int:
        return len(self._rules)

    def rules(self) -> List[Tuple[int, int, int]]:
        """A copy of the (start, end, owner) rules, sorted by start."""
        return list(self._rules)

    def rules_of(self, node_id: int) -> List[Tuple[int, int]]:
        """The (start, end) ranges currently owned by ``node_id``."""
        return [(s, e) for s, e, owner in self._rules if owner == node_id]

    def owned_bytes(self, node_id: int) -> int:
        return sum(e - s for s, e, owner in self._rules
                   if owner == node_id)

    def node_of(self, vaddr: int) -> Optional[int]:
        """Owner of ``vaddr``, or None if unmapped (e.g. NULL)."""
        index = bisect.bisect_right(self._starts, vaddr) - 1
        if index < 0:
            return None
        start, end, owner = self._rules[index]
        if vaddr >= end:
            return None
        return owner

    def add_node(self, node_id: int) -> None:
        """Append the rule for a node just added via ``addrspace.grow``."""
        start, end = self.addrspace.range_of(node_id)
        if self._rules and self._rules[-1][1] > start:
            raise PlacementError(
                f"new node {node_id} range overlaps existing rules")
        self._rules.append((start, end, node_id))
        self._starts.append(start)
        self.version += 1

    def move(self, virt_start: int, virt_end: int, new_owner: int) -> None:
        """Retarget [virt_start, virt_end) to ``new_owner``.

        Splits partially covered rules, coalesces same-owner neighbours,
        and bumps ``version`` exactly once.  The range must be fully
        covered by existing rules (ownership is total over the mapped
        space; there is nothing to move outside it).
        """
        if virt_end <= virt_start:
            raise PlacementError("empty or inverted range")
        self.addrspace._check_node(new_owner)
        covered = 0
        rebuilt: List[Tuple[int, int, int]] = []
        for start, end, owner in self._rules:
            if end <= virt_start or virt_end <= start:
                rebuilt.append((start, end, owner))
                continue
            cut_start = max(start, virt_start)
            cut_end = min(end, virt_end)
            covered += cut_end - cut_start
            if start < cut_start:
                rebuilt.append((start, cut_start, owner))
            if cut_end < end:
                rebuilt.append((cut_end, end, owner))
        if covered != virt_end - virt_start:
            raise PlacementError(
                f"[{virt_start:#x},{virt_end:#x}) is not fully covered "
                "by existing rules")
        rebuilt.append((virt_start, virt_end, new_owner))
        rebuilt.sort()
        # Coalesce adjacent same-owner rules.
        coalesced: List[Tuple[int, int, int]] = []
        for rule in rebuilt:
            if (coalesced and coalesced[-1][2] == rule[2]
                    and coalesced[-1][1] == rule[0]):
                coalesced[-1] = (coalesced[-1][0], rule[1], rule[2])
            else:
                coalesced.append(rule)
        self._rules = coalesced
        self._starts = [r[0] for r in self._rules]
        self.version += 1
        for callback in self._subscribers:
            callback(virt_start, virt_end, new_owner, self.version)
