"""pulse: accelerating distributed pointer-traversals on disaggregated
memory -- a simulation-based reproduction of the ASPLOS 2025 paper.

Quickstart::

    from repro import PulseCluster
    from repro.structures import HashTable

    cluster = PulseCluster(node_count=2)
    table = HashTable(cluster.memory, buckets=64, value_bytes=16,
                      partition_nodes=2)
    table.insert(42, b"hello, rack mem!")
    result = cluster.run_traversal(table.find_iterator(), 42)
    print(result.value, f"{result.latency_ns/1000:.1f} us")

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured comparison of every table and figure.
"""

from repro.core import (
    KernelBuilder,
    OffloadEngine,
    PulseCluster,
    PulseIterator,
)
from repro.core.iterator import TraversalResult
from repro.params import DEFAULT_PARAMS, SystemParams

__version__ = "1.0.0"

__all__ = [
    "DEFAULT_PARAMS",
    "KernelBuilder",
    "OffloadEngine",
    "PulseCluster",
    "PulseIterator",
    "SystemParams",
    "TraversalResult",
    "__version__",
]
