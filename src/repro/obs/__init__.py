"""Observability: metrics registry, spans, and snapshots.

See :mod:`repro.obs.metrics` for the registry and metric kinds and
:mod:`repro.obs.span` for per-stage request timing.  The snapshot schema
is documented in ``docs/architecture.md`` (Observability section).
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
)
from repro.obs.span import Span

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricsRegistry",
    "Span",
]
