"""Per-request, per-stage timing spans.

A :class:`Span` times one stage of one request and records the duration
into a registry histogram, generalizing the ad-hoc Fig 9 instrumentation
(netstack / scheduler / memory pipeline / logic).  Two usage modes:

* **measured** -- a context manager around the simulated work; the
  duration is the simulated-clock delta between enter and exit.  Use
  this when the stage's wall time *is* the quantity of interest
  (it includes queueing)::

      with registry.span("mem0.acc.execute"):
          yield from self._run(request)    # yields inside are fine

  Context managers compose with generator-based processes because the
  clock is the simulation clock, not the Python call stack.

* **annotated** -- :meth:`Span.finish` with an explicit duration records
  the *modeled* service time, excluding queueing.  Fig 9's breakdown is
  built this way: the netstack span records exactly the 430 ns parse
  latency even when the rx unit was contended::

      registry.span("mem0.acc.span.netstack").finish(acc.netstack_ns)

Each span records once; the histogram accumulates count/sum/quantiles
per stage, so ``sum / count`` is the per-stage mean the report prints.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.obs.metrics import Histogram, MetricError

__all__ = ["Span"]


class Span:
    """One timed stage, recorded into a histogram exactly once."""

    __slots__ = ("_histogram", "_clock", "_start", "_closed")

    def __init__(self, histogram: Histogram,
                 clock: Callable[[], float]):
        self._histogram = histogram
        self._clock = clock
        self._start: Optional[float] = None
        self._closed = False

    @property
    def name(self) -> str:
        return self._histogram.name

    def start(self) -> "Span":
        self._start = self._clock()
        return self

    def finish(self, duration: Optional[float] = None) -> float:
        """Record the span; returns the recorded duration.

        With ``duration`` the span is annotated with a modeled service
        time; without it the measured clock delta since :meth:`start`
        (or :meth:`__enter__`) is used.
        """
        if self._closed:
            raise MetricError(f"span {self.name!r} already finished")
        if duration is None:
            if self._start is None:
                raise MetricError(
                    f"span {self.name!r} finished without start() or an "
                    "explicit duration")
            duration = self._clock() - self._start
        self._closed = True
        self._histogram.record(duration)
        return duration

    def __enter__(self) -> "Span":
        return self.start()

    def __exit__(self, exc_type, _exc, _tb) -> bool:
        # Record even on exception: the stage consumed that time.
        if not self._closed:
            self.finish()
        return False
