"""Simulation-time metrics: counters, gauges, and streaming histograms.

One :class:`MetricsRegistry` serves a whole simulated rack.  Every
component (client, switch, accelerators, fabric endpoints, memory nodes,
baseline servers) registers metrics under dotted names --
``mem0.acc.span.netstack``, ``switch.dropped_stale``,
``net.client0.tx_bytes`` -- and one :meth:`MetricsRegistry.snapshot`
call at the end of a run yields a JSON-serializable view of all of them.

Three metric kinds cover what the benchmarks report:

* :class:`Counter` -- monotonically increasing count (requests,
  retransmits, bytes).
* :class:`Gauge` -- a point-in-time value, either set explicitly or
  computed by a callback at read time (table occupancy, bandwidth).
* :class:`Histogram` -- a streaming log-bucketed distribution giving
  p50/p90/p99/p999 without storing individual samples.  Bucket
  boundaries grow geometrically (~4 % relative error); exact ``sum``,
  ``count``, ``min``, and ``max`` are tracked alongside, and quantiles
  are clamped into ``[min, max]`` so degenerate distributions (all
  samples equal) report exact values.

Time is supplied by a ``clock`` callable (usually ``lambda: env.now``)
so the registry stays independent of the simulation kernel.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, Optional

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricsRegistry",
]


class MetricError(ValueError):
    """Misuse of the metrics API (type conflicts, negative increments)."""


class Counter:
    """A monotonically increasing count (int or float)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise MetricError(
                f"counter {self.name!r}: negative increment {amount}")
        self.value += amount

    def reset(self) -> None:
        self.value = 0


class Gauge:
    """A point-in-time value, set explicitly or computed by a callback."""

    __slots__ = ("name", "_value", "_fn")

    def __init__(self, name: str, fn: Optional[Callable[[], float]] = None):
        self.name = name
        self._value = 0.0
        self._fn = fn

    @property
    def value(self) -> float:
        if self._fn is not None:
            return self._fn()
        return self._value

    def set(self, value: float) -> None:
        if self._fn is not None:
            raise MetricError(
                f"gauge {self.name!r} is callback-backed; cannot set()")
        self._value = value

    def reset(self) -> None:
        if self._fn is None:
            self._value = 0.0


class Histogram:
    """Streaming log-bucketed histogram.

    ``record()`` is O(1); quantiles walk the sparse bucket map.  Values
    <= 0 land in a dedicated zero bucket (durations are non-negative;
    tiny negative values from floating-point subtraction are clamped).
    """

    GROWTH = 1.04
    _LOG_GROWTH = math.log(GROWTH)

    __slots__ = ("name", "count", "sum", "_min", "_max", "_zero",
                 "_buckets")

    def __init__(self, name: str):
        self.name = name
        self._clear()

    def _clear(self) -> None:
        self.count = 0
        self.sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._zero = 0
        self._buckets: Dict[int, int] = {}

    def record(self, value: float) -> None:
        if value < 0.0:
            value = 0.0
        self.count += 1
        self.sum += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        if value <= 0.0:
            self._zero += 1
        else:
            index = int(math.floor(math.log(value) / self._LOG_GROWTH))
            self._buckets[index] = self._buckets.get(index, 0) + 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    @property
    def min(self) -> float:
        return self._min if self.count else 0.0

    @property
    def max(self) -> float:
        return self._max if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Value at percentile ``p`` (0-100), within ~4 % bucket error."""
        if not 0.0 <= p <= 100.0:
            raise MetricError(f"percentile {p} outside [0, 100]")
        if self.count == 0:
            return 0.0
        rank = max(1, math.ceil(p / 100.0 * self.count))
        cumulative = self._zero
        if cumulative >= rank:
            value = 0.0
        else:
            value = self._max
            for index in sorted(self._buckets):
                cumulative += self._buckets[index]
                if cumulative >= rank:
                    # Geometric midpoint of the bucket's bounds.
                    value = self.GROWTH ** (index + 0.5)
                    break
        return min(max(value, self.min), self.max)

    def reset(self) -> None:
        self._clear()

    def snapshot(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(50.0),
            "p90": self.percentile(90.0),
            "p99": self.percentile(99.0),
            "p999": self.percentile(99.9),
        }


class MetricsRegistry:
    """Name-keyed counters, gauges, histograms, and spans for one rack."""

    def __init__(self, clock: Optional[Callable[[], float]] = None):
        self._clock = clock if clock is not None else (lambda: 0.0)
        self._metrics: Dict[str, Any] = {}

    @property
    def now(self) -> float:
        return self._clock()

    def _get(self, name: str, cls):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name)
            self._metrics[name] = metric
        elif type(metric) is not cls:
            raise MetricError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, not {cls.__name__}")
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str,
              fn: Optional[Callable[[], float]] = None) -> Gauge:
        gauge = self._get(name, Gauge)
        if fn is not None:
            if gauge._fn is not None and gauge._fn is not fn:
                raise MetricError(
                    f"gauge {name!r} already has a callback")
            gauge._fn = fn
        return gauge

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def span(self, name: str) -> "Span":
        from repro.obs.span import Span
        return Span(self.histogram(name), self._clock)

    def names(self, prefix: str = "") -> list:
        return sorted(n for n in self._metrics if n.startswith(prefix))

    def reset(self) -> None:
        """Zero every counter/histogram/set-gauge (callbacks untouched)."""
        for metric in self._metrics.values():
            metric.reset()

    def snapshot(self) -> Dict[str, Any]:
        """JSON-serializable view of every registered metric."""
        counters: Dict[str, float] = {}
        gauges: Dict[str, float] = {}
        histograms: Dict[str, Dict[str, float]] = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Counter):
                counters[name] = metric.value
            elif isinstance(metric, Gauge):
                gauges[name] = metric.value
            else:
                histograms[name] = metric.snapshot()
        return {
            "now_ns": self.now,
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }
