"""Allocation over disaggregated memory nodes.

The paper does not innovate on allocation (section 2.2): it uses glibc
with *load-balanced* placement across nodes, and the supplementary
material's allocation-policy study (Supp Fig 2) compares that uniform
placement against an application-directed *partitioned* placement that
keeps whole subtrees on one node.  Both policies live here:

* ``PlacementPolicy.UNIFORM`` -- each allocation goes to the node with the
  least bytes allocated (ties broken round-robin), spreading a structure's
  nodes across the rack.
* ``PlacementPolicy.PARTITIONED`` -- allocations fill node 0, then node 1,
  ...; structure code may also direct placement per-allocation with
  ``preferred_node``.

Within a node the allocator is a bump allocator with a size-bucketed free
list, and it installs/extends the node's TCAM range entries as it grows.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.mem.addrspace import AddressSpace
from repro.mem.translation import (
    PERM_READ,
    PERM_WRITE,
    RangeEntry,
    RangeTranslationTable,
)


class AllocationError(Exception):
    """Out of memory or malformed allocation request."""


class PlacementPolicy(enum.Enum):
    UNIFORM = "uniform"
    PARTITIONED = "partitioned"


@dataclass
class _NodeArena:
    """Per-node bump region + free lists."""

    virt_start: int
    virt_end: int
    bump: int = 0
    allocated_bytes: int = 0
    free_lists: Dict[int, List[int]] = field(default_factory=dict)

    @property
    def capacity(self) -> int:
        return self.virt_end - self.virt_start

    def remaining(self) -> int:
        return self.capacity - self.bump


class DisaggregatedAllocator:
    """Allocates virtual addresses across the rack's memory nodes."""

    def __init__(self, addrspace: AddressSpace,
                 tables: List[RangeTranslationTable],
                 policy: PlacementPolicy = PlacementPolicy.UNIFORM,
                 alignment: int = 8):
        if len(tables) != addrspace.node_count:
            raise AllocationError(
                "need one translation table per memory node")
        if alignment < 1 or (alignment & (alignment - 1)):
            raise AllocationError("alignment must be a power of two")
        self.addrspace = addrspace
        self.policy = policy
        self.alignment = alignment
        self._tables = tables
        self._arenas = [
            _NodeArena(*addrspace.range_of(n))
            for n in range(addrspace.node_count)
        ]
        self._rr_next = 0
        self.live_allocations: Dict[int, int] = {}  # vaddr -> size

    # -- public API ---------------------------------------------------------
    def alloc(self, size: int,
              preferred_node: Optional[int] = None) -> int:
        """Allocate ``size`` bytes; returns the virtual address."""
        if size <= 0:
            raise AllocationError(f"invalid allocation size: {size}")
        size = self._align(size)
        node_id = (preferred_node if preferred_node is not None
                   else self._pick_node(size))
        if not 0 <= node_id < self.addrspace.node_count:
            raise AllocationError(f"no such node: {node_id}")
        vaddr = self._alloc_on(node_id, size)
        self.live_allocations[vaddr] = size
        return vaddr

    def free(self, vaddr: int) -> None:
        """Return an allocation to its node's free list."""
        if vaddr not in self.live_allocations:
            raise AllocationError(f"free of unallocated address {vaddr:#x}")
        size = self.live_allocations.pop(vaddr)
        node_id, _ = self.addrspace.to_physical(vaddr)
        arena = self._arenas[node_id]
        arena.allocated_bytes -= size
        arena.free_lists.setdefault(size, []).append(vaddr)

    def allocated_bytes(self, node_id: int) -> int:
        return self._arenas[node_id].allocated_bytes

    def node_fill_fractions(self) -> List[float]:
        """Per-node fraction of capacity currently allocated."""
        return [a.allocated_bytes / a.capacity for a in self._arenas]

    # -- internals ----------------------------------------------------------
    def _align(self, size: int) -> int:
        mask = self.alignment - 1
        return (size + mask) & ~mask

    def _pick_node(self, size: int) -> int:
        if self.policy is PlacementPolicy.PARTITIONED:
            for node_id, arena in enumerate(self._arenas):
                if (arena.remaining() >= size
                        or size in arena.free_lists
                        and arena.free_lists[size]):
                    return node_id
            raise AllocationError("all nodes full")
        # UNIFORM: least-allocated node first, round-robin on ties.
        order = sorted(
            range(len(self._arenas)),
            key=lambda n: (self._arenas[n].allocated_bytes,
                           (n - self._rr_next) % len(self._arenas)),
        )
        self._rr_next = (self._rr_next + 1) % len(self._arenas)
        for node_id in order:
            arena = self._arenas[node_id]
            if arena.remaining() >= size or arena.free_lists.get(size):
                return node_id
        raise AllocationError("all nodes full")

    def _alloc_on(self, node_id: int, size: int) -> int:
        arena = self._arenas[node_id]
        bucket = arena.free_lists.get(size)
        if bucket:
            vaddr = bucket.pop()
            arena.allocated_bytes += size
            return vaddr
        if arena.remaining() < size:
            raise AllocationError(
                f"node {node_id} out of memory ({size} bytes requested, "
                f"{arena.remaining()} free)")
        vaddr = arena.virt_start + arena.bump
        phys = arena.bump
        arena.bump += size
        arena.allocated_bytes += size
        self._tables[node_id].insert(RangeEntry(
            virt_start=vaddr,
            virt_end=vaddr + size,
            phys_start=phys,
            perms=PERM_READ | PERM_WRITE,
        ))
        return vaddr
