"""Allocation over disaggregated memory nodes.

The paper does not innovate on allocation (section 2.2): it uses glibc
with *load-balanced* placement across nodes, and the supplementary
material's allocation-policy study (Supp Fig 2) compares that uniform
placement against an application-directed *partitioned* placement that
keeps whole subtrees on one node.  Both policies live here:

* ``PlacementPolicy.UNIFORM`` -- each allocation goes to the node with the
  least bytes allocated (ties broken round-robin), spreading a structure's
  nodes across the rack.
* ``PlacementPolicy.PARTITIONED`` -- allocations fill node 0, then node 1,
  ...; structure code may also direct placement per-allocation with
  ``preferred_node``.

Within a node the allocator is a bump allocator with a best-fit free
list (freed blocks are split and re-merged, so mixed-size churn reuses
space instead of exhausting the bump pointer), and it installs/extends
the node's TCAM range entries as it grows.

Virtual and physical offsets are tracked separately: an address keeps
its virtual *home* range forever, but live migration
(``repro.placement``) can move its backing bytes to another node.  The
physical-arena APIs the migration engine uses -- :meth:`adopt_physical`,
:meth:`release_physical`, :meth:`transfer_ownership`,
:meth:`snap_range` -- live here, next to the accounting they mutate.

**Traversal arenas** (:class:`TraversalArena`) are the
collective-allocator layer on top: a data structure asks for a named
arena per chain (``allocator.arena(structure_id, chain_hint)``) and
routes every node allocation through it.  The arena reserves contiguous
virtual *extents* and bump-allocates inside them, so objects that are
traversed together -- one bucket chain, one run of B+Tree leaves, one
adjacency run -- occupy contiguous virtual ranges that
``PlacementMap.move()`` can ship between memory nodes as a unit.  This
is the placement refactor the affinity rebalancer builds on: without
arenas, allocation order interleaves chains and a depth-d traversal
crosses node boundaries ~d times once a structure spans the rack.
"""

from __future__ import annotations

import bisect
import enum
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple

from repro.mem.addrspace import AddressSpace
from repro.mem.translation import (
    PERM_READ,
    PERM_WRITE,
    RangeEntry,
    RangeTranslationTable,
)


class AllocationError(Exception):
    """Out of memory or malformed allocation request."""


class PlacementPolicy(enum.Enum):
    UNIFORM = "uniform"
    PARTITIONED = "partitioned"


@dataclass
class _NodeArena:
    """Per-node accounting: virtual bump, physical bump, free lists.

    ``free_blocks`` holds freed *virtual* blocks this node still backs
    (their TCAM entries stay installed, so reuse is instant);
    ``phys_free`` holds *physical* holes left behind when a segment
    migrates away, reusable by later allocations or adoptions.
    """

    virt_start: int
    virt_end: int
    virt_bump: int = 0
    phys_bump: int = 0
    live_bytes: int = 0
    #: (vaddr, size) freed blocks, sorted by vaddr
    free_blocks: List[Tuple[int, int]] = field(default_factory=list)
    free_bytes: int = 0
    #: (phys, size) holes in physical memory, sorted by phys
    phys_free: List[Tuple[int, int]] = field(default_factory=list)
    phys_free_bytes: int = 0
    #: False while the node is draining (or drained): no new placements
    allocatable: bool = True

    @property
    def capacity(self) -> int:
        return self.virt_end - self.virt_start

    def virt_remaining(self) -> int:
        return self.capacity - self.virt_bump

    def phys_available(self) -> int:
        return (self.capacity - self.phys_bump) + self.phys_free_bytes


@dataclass
class _ArenaExtent:
    """One contiguous virtual reservation backing part of an arena."""

    start: int
    end: int
    cursor: int
    home_node: int

    def remaining(self) -> int:
        return self.end - self.cursor


class TraversalArena:
    """A collective-allocator handle: co-locate one chain's objects.

    Obtained from :meth:`DisaggregatedAllocator.arena` and keyed by
    ``(structure_id, chain_hint, preferred_node)``; every ``alloc()``
    bump-allocates inside the arena's current extent, so successive
    nodes of the chain are virtually contiguous.  When an extent fills,
    the arena reserves a fresh one -- preferring the same memory node
    (affinity), falling back to the allocator's placement policy when
    that node is full or draining.  Objects larger than an extent
    degrade gracefully to the plain allocation path.

    Extents, not individual objects, are the migration unit: the
    rebalancer widens any in-arena candidate segment to its covering
    extent so a chain moves whole instead of being sheared at an
    arbitrary segment boundary.
    """

    def __init__(self, allocator: "DisaggregatedAllocator",
                 structure_id: int, chain_hint: Hashable,
                 preferred_node: Optional[int],
                 extent_bytes: int):
        self.allocator = allocator
        self.structure_id = structure_id
        self.chain_hint = chain_hint
        self.preferred_node = preferred_node
        self.extent_bytes = extent_bytes
        self.extents: List[_ArenaExtent] = []
        self.allocated_bytes = 0

    def alloc(self, size: int) -> int:
        """Allocate ``size`` bytes inside the arena's virtual extents."""
        return self.allocator._arena_alloc(self, size)

    def extent_ranges(self) -> List[Tuple[int, int]]:
        """The arena's reserved (virt_start, virt_end) spans."""
        return [(e.start, e.end) for e in self.extents]

    @property
    def home_node(self) -> Optional[int]:
        """The node the arena's most recent extent was placed on."""
        if not self.extents:
            return self.preferred_node
        return self.extents[-1].home_node


class DisaggregatedAllocator:
    """Allocates virtual addresses across the rack's memory nodes."""

    #: default virtual reservation per arena extent.  Small enough that
    #: a large structure still spreads across nodes (the UNIFORM policy
    #: operates per extent), large enough to hold a useful run of chain
    #: nodes (16 of the paper's 256 B hash nodes per extent).
    ARENA_EXTENT_BYTES = 4096

    def __init__(self, addrspace: AddressSpace,
                 tables: List[RangeTranslationTable],
                 policy: PlacementPolicy = PlacementPolicy.UNIFORM,
                 alignment: int = 8,
                 arena_extent_bytes: Optional[int] = None):
        if len(tables) != addrspace.node_count:
            raise AllocationError(
                "need one translation table per memory node")
        if alignment < 1 or (alignment & (alignment - 1)):
            raise AllocationError("alignment must be a power of two")
        self.addrspace = addrspace
        self.policy = policy
        self.alignment = alignment
        self._tables = tables
        self._arenas = [
            _NodeArena(*addrspace.range_of(n))
            for n in range(addrspace.node_count)
        ]
        self._rr_next = 0
        self.arena_extent_bytes = (arena_extent_bytes
                                   if arena_extent_bytes is not None
                                   else self.ARENA_EXTENT_BYTES)
        #: (structure_id, chain_hint, preferred_node) -> TraversalArena
        self._arena_handles: Dict[Tuple, TraversalArena] = {}
        #: extent starts / (start, end) spans, sorted, for extent_of()
        self._extent_starts: List[int] = []
        self._extent_spans: List[Tuple[int, int]] = []
        self._next_structure_id = 0
        self.extent_count = 0
        self.arena_fallback_allocs = 0
        self.live_allocations: dict = {}  # vaddr -> size
        #: set by GlobalMemory once a placement map exists; free() then
        #: resolves a block's *current* owner through it (the arithmetic
        #: home is wrong after a migration)
        self.owner_map = None
        # Reuse/fragmentation diagnostics (exported as gauges once
        # attach_metrics() is called).
        self.reuse_count = 0
        self.split_count = 0
        self.merge_count = 0
        self._registry = None

    # -- public API ---------------------------------------------------------
    def alloc(self, size: int,
              preferred_node: Optional[int] = None) -> int:
        """Allocate ``size`` bytes; returns the virtual address."""
        if size <= 0:
            raise AllocationError(f"invalid allocation size: {size}")
        size = self._align(size)
        if preferred_node is not None:
            if not 0 <= preferred_node < len(self._arenas):
                raise AllocationError(f"no such node: {preferred_node}")
            if not self._arenas[preferred_node].allocatable:
                preferred_node = None  # draining: fall back to policy
        node_id = (preferred_node if preferred_node is not None
                   else self._pick_node(size))
        vaddr = self._alloc_on(node_id, size)
        self.live_allocations[vaddr] = size
        return vaddr

    def free(self, vaddr: int) -> None:
        """Return an allocation to its owning node's free list."""
        if vaddr not in self.live_allocations:
            raise AllocationError(f"free of unallocated address {vaddr:#x}")
        size = self.live_allocations.pop(vaddr)
        node_id = self._owner_of(vaddr)
        arena = self._arenas[node_id]
        arena.live_bytes -= size
        self._insert_free_block(node_id, arena, vaddr, size)

    # -- traversal arenas ---------------------------------------------------
    def new_structure_id(self) -> int:
        """A rack-unique id naming one data structure's arena family."""
        sid = self._next_structure_id
        self._next_structure_id += 1
        return sid

    def arena(self, structure_id: int, chain_hint: Hashable = 0,
              preferred_node: Optional[int] = None,
              extent_bytes: Optional[int] = None) -> TraversalArena:
        """The arena for one chain of one structure (created on demand).

        ``chain_hint`` names the traversal unit within the structure --
        a hash bucket, a B+Tree level, a vertex community -- and may be
        any hashable.  ``preferred_node`` pins the arena's extents to
        one memory node (the partitioned-placement policies); None lets
        each extent follow the allocator's placement policy, so a big
        structure still spreads across the rack at extent granularity.
        """
        key = (structure_id, chain_hint, preferred_node)
        handle = self._arena_handles.get(key)
        if handle is None:
            handle = TraversalArena(
                self, structure_id, chain_hint, preferred_node,
                extent_bytes if extent_bytes is not None
                else self.arena_extent_bytes)
            self._arena_handles[key] = handle
        return handle

    def arena_extent_of(self, vaddr: int) -> Optional[Tuple[int, int]]:
        """The (start, end) arena extent containing ``vaddr``, if any.

        The rebalancer uses this to widen a candidate segment to its
        covering extent, so chain arenas migrate whole.
        """
        index = bisect.bisect_right(self._extent_starts, vaddr) - 1
        if index < 0:
            return None
        start, end = self._extent_spans[index]
        if vaddr >= end:
            return None
        return start, end

    def arena_extents(self) -> List[Tuple[int, int]]:
        """Every reserved arena extent, sorted by virtual start."""
        return list(self._extent_spans)

    def _arena_alloc(self, handle: TraversalArena, size: int) -> int:
        if size <= 0:
            raise AllocationError(f"invalid allocation size: {size}")
        size = self._align(size)
        extent = handle.extents[-1] if handle.extents else None
        if extent is None or extent.remaining() < size:
            extent = self._reserve_extent(handle, size)
            if extent is None:
                # Rack too full (or object bigger than an extent) --
                # degrade to the plain path rather than fail.
                self.arena_fallback_allocs += 1
                return self.alloc(size,
                                  preferred_node=handle.preferred_node)
        vaddr = extent.cursor
        extent.cursor += size
        # A migration may have rehomed part of the extent since it was
        # reserved; credit the *current* owner.
        owner = self._owner_of(vaddr)
        self._arenas[owner].live_bytes += size
        self.live_allocations[vaddr] = size
        handle.allocated_bytes += size
        return vaddr

    def _reserve_extent(self, handle: TraversalArena,
                        min_bytes: int) -> Optional[_ArenaExtent]:
        """Reserve a fresh extent: virtual span + physical backing +
        one covering TCAM entry.  Returns None when nothing fits."""
        span = max(self._align(min_bytes), handle.extent_bytes)
        order: List[int] = []
        if handle.preferred_node is not None:
            # Explicit pin (placement callable / partition_nodes):
            # always honored first, even after a spill elsewhere.
            order.append(handle.preferred_node)
        home = handle.home_node
        if home is not None and home not in order:
            # Implicit affinity: keep extending the chain on the node of
            # its last extent -- but only while that node's fill stays
            # within 0.25 of the rack minimum, so one big structure
            # can't pile onto a single node and defeat load balance.
            fills = self.node_fill_fractions()
            if fills[home] <= min(fills) + 0.25:
                order.append(home)
        try:
            order.append(self._pick_node(span))
        except AllocationError:
            pass
        order.extend(range(len(self._arenas)))
        for node_id in order:
            if not 0 <= node_id < len(self._arenas):
                continue
            arena = self._arenas[node_id]
            if not arena.allocatable:
                continue
            if arena.virt_remaining() < span:
                continue
            try:
                phys = self._grab_phys(arena, span, node_id)
            except AllocationError:
                continue
            vaddr = arena.virt_start + arena.virt_bump
            arena.virt_bump += span
            self._tables[node_id].insert(RangeEntry(
                virt_start=vaddr,
                virt_end=vaddr + span,
                phys_start=phys,
                perms=PERM_READ | PERM_WRITE,
            ))
            extent = _ArenaExtent(start=vaddr, end=vaddr + span,
                                  cursor=vaddr, home_node=node_id)
            handle.extents.append(extent)
            index = bisect.bisect(self._extent_starts, vaddr)
            self._extent_starts.insert(index, vaddr)
            self._extent_spans.insert(index, (vaddr, vaddr + span))
            self.extent_count += 1
            return extent
        return None

    def allocated_bytes(self, node_id: int) -> int:
        """Bytes of live allocations currently backed by ``node_id``."""
        return self._arenas[node_id].live_bytes

    def live_bytes_in(self, virt_start: int, virt_end: int) -> int:
        """Live-allocation bytes overlapping [virt_start, virt_end)."""
        return sum(
            min(vaddr + size, virt_end) - max(vaddr, virt_start)
            for vaddr, size in self.live_allocations.items()
            if vaddr < virt_end and virt_start < vaddr + size)

    def fragmentation_bytes(self, node_id: int) -> int:
        """Bytes sitting in the node's free list (freed, reusable)."""
        return self._arenas[node_id].free_bytes

    def node_fill_fractions(self) -> List[float]:
        """Per-node fraction of capacity holding live allocations.

        This is the rebalancer's primary signal, and the same values the
        ``mem<i>.fill_fraction`` gauges export (one data source).  A
        fully drained node (capacity 0) reads as fill 0.0, not a
        ZeroDivisionError.
        """
        return [a.live_bytes / a.capacity if a.capacity else 0.0
                for a in self._arenas]

    def phys_available(self, node_id: int) -> int:
        """Physical bytes ``node_id`` could still back (bump + holes)."""
        return self._arenas[node_id].phys_available()

    def set_allocatable(self, node_id: int, allocatable: bool) -> None:
        """Include/exclude a node from placement (drain support)."""
        self._arenas[node_id].allocatable = allocatable

    def is_allocatable(self, node_id: int) -> bool:
        return self._arenas[node_id].allocatable

    def attach_metrics(self, registry) -> None:
        """Export fill/fragmentation gauges (``mem<i>.fill_fraction``,
        ``mem<i>.allocated_bytes``, ``mem<i>.free_bytes``) plus rack-wide
        reuse counters, all reading the live arena accounting."""
        self._registry = registry
        registry.gauge("alloc.block_reuses", fn=lambda: self.reuse_count)
        registry.gauge("alloc.block_splits", fn=lambda: self.split_count)
        registry.gauge("alloc.block_merges", fn=lambda: self.merge_count)
        registry.gauge(
            "alloc.fragmentation_bytes",
            fn=lambda: sum(a.free_bytes for a in self._arenas))
        registry.gauge("alloc.arena_handles",
                       fn=lambda: len(self._arena_handles))
        registry.gauge("alloc.arena_extents",
                       fn=lambda: self.extent_count)
        registry.gauge("alloc.arena_fallback_allocs",
                       fn=lambda: self.arena_fallback_allocs)
        for node_id in range(len(self._arenas)):
            self._register_node_gauges(node_id)

    # -- migration / membership API -----------------------------------------
    def add_node(self, table: RangeTranslationTable) -> int:
        """Adopt a freshly grown node (after ``AddressSpace.grow``)."""
        node_id = len(self._arenas)
        if node_id >= self.addrspace.node_count:
            raise AllocationError("add_node before addrspace.grow()")
        self._tables.append(table)
        self._arenas.append(_NodeArena(*self.addrspace.range_of(node_id)))
        if self._registry is not None:
            self._register_node_gauges(node_id)
        return node_id

    def adopt_physical(self, node_id: int, size: int) -> int:
        """Reserve ``size`` physical bytes on ``node_id`` for a segment
        migrating in; returns the physical start offset."""
        if size <= 0:
            raise AllocationError(f"invalid adoption size: {size}")
        return self._grab_phys(self._arenas[node_id], size, node_id)

    def release_physical(self, node_id: int, phys: int, size: int) -> None:
        """Return a physical hole (a segment migrated away)."""
        arena = self._arenas[node_id]
        blocks = arena.phys_free
        index = bisect.bisect(blocks, (phys, size))
        blocks.insert(index, (phys, size))
        arena.phys_free_bytes += size
        # Merge physically adjacent holes (both directions).
        while (index + 1 < len(blocks)
               and blocks[index][0] + blocks[index][1]
               == blocks[index + 1][0]):
            p, s = blocks.pop(index)
            blocks[index] = (p, s + blocks[index][1])
        while (index > 0
               and blocks[index - 1][0] + blocks[index - 1][1]
               == blocks[index][0]):
            p, s = blocks.pop(index)
            index -= 1
            blocks[index] = (blocks[index][0], blocks[index][1] + s)

    def transfer_ownership(self, virt_start: int, virt_end: int,
                           src: int, dst: int) -> int:
        """Move [virt_start, virt_end) accounting from ``src`` to ``dst``.

        Live-byte totals and any free blocks inside the range follow the
        segment to its new owner (the caller has already moved the bytes
        and TCAM entries).  Returns the live bytes moved.  Atomic: the
        straddle check runs over every block before the first mutation,
        so a raise leaves both arenas untouched.
        """
        src_arena = self._arenas[src]
        dst_arena = self._arenas[dst]
        staying: List[Tuple[int, int]] = []
        moving: List[Tuple[int, int]] = []
        for vaddr, size in src_arena.free_blocks:
            if virt_start <= vaddr and vaddr + size <= virt_end:
                moving.append((vaddr, size))
            elif vaddr + size <= virt_start or virt_end <= vaddr:
                staying.append((vaddr, size))
            else:
                raise AllocationError(
                    f"free block [{vaddr:#x},{vaddr + size:#x}) straddles "
                    f"migration range [{virt_start:#x},{virt_end:#x}); "
                    "snap_range() the range first")
        moved_live = sum(
            size for vaddr, size in self.live_allocations.items()
            if virt_start <= vaddr < virt_end)
        src_arena.live_bytes -= moved_live
        dst_arena.live_bytes += moved_live
        src_arena.free_blocks = staying
        for vaddr, size in moving:
            src_arena.free_bytes -= size
            self._insert_free_block(dst, dst_arena, vaddr, size)
        return moved_live

    def snap_range(self, node_id: int, virt_start: int,
                   virt_end: int) -> Tuple[int, int]:
        """Widen a range to allocation-block boundaries.

        Migration must never split a live allocation (or a freed block
        still bucketed on one node) across two owners; any block the
        range cuts through pulls the boundary outward.  Blocks never
        overlap, so one pass over each suffices.
        """
        if virt_end <= virt_start:
            raise AllocationError("empty or inverted migration range")
        start, end = virt_start, virt_end
        arena = self._arenas[node_id]
        blocks = list(arena.free_blocks)
        blocks.extend(self.live_allocations.items())
        for vaddr, size in blocks:
            if vaddr < start < vaddr + size:
                start = vaddr
            if vaddr < end < vaddr + size:
                end = vaddr + size
        return start, end

    # -- internals ----------------------------------------------------------
    def _register_node_gauges(self, node_id: int) -> None:
        arena = self._arenas[node_id]
        registry = self._registry
        registry.gauge(f"mem{node_id}.fill_fraction",
                       fn=lambda: (arena.live_bytes / arena.capacity
                                   if arena.capacity else 0.0))
        registry.gauge(f"mem{node_id}.allocated_bytes",
                       fn=lambda: arena.live_bytes)
        registry.gauge(f"mem{node_id}.free_bytes",
                       fn=lambda: arena.free_bytes)

    def _owner_of(self, vaddr: int) -> int:
        if self.owner_map is not None:
            node_id = self.owner_map.node_of(vaddr)
        else:
            node_id, _ = self.addrspace.to_physical(vaddr)
        if node_id is None:
            raise AllocationError(f"unowned virtual address {vaddr:#x}")
        return node_id

    def _align(self, size: int) -> int:
        mask = self.alignment - 1
        return (size + mask) & ~mask

    def _can_alloc(self, arena: _NodeArena, size: int) -> bool:
        if any(bsize >= size for _v, bsize in arena.free_blocks):
            return True
        return (arena.virt_remaining() >= size
                and arena.phys_available() >= size)

    def _pick_node(self, size: int) -> int:
        arenas = self._arenas
        if self.policy is PlacementPolicy.PARTITIONED:
            for node_id, arena in enumerate(arenas):
                if arena.allocatable and self._can_alloc(arena, size):
                    return node_id
            raise AllocationError("all nodes full")
        # UNIFORM: least-allocated node first, round-robin on ties.
        order = sorted(
            range(len(arenas)),
            key=lambda n: (arenas[n].live_bytes,
                           (n - self._rr_next) % len(arenas)),
        )
        self._rr_next = (self._rr_next + 1) % len(arenas)
        for node_id in order:
            arena = arenas[node_id]
            if arena.allocatable and self._can_alloc(arena, size):
                return node_id
        raise AllocationError("all nodes full")

    def _alloc_on(self, node_id: int, size: int) -> int:
        arena = self._arenas[node_id]
        vaddr = self._take_free_block(arena, size)
        if vaddr is not None:
            arena.live_bytes += size
            self.reuse_count += 1
            return vaddr
        if arena.virt_remaining() < size:
            raise AllocationError(
                f"node {node_id} out of memory ({size} bytes requested, "
                f"{arena.virt_remaining()} free)")
        phys = self._grab_phys(arena, size, node_id)
        vaddr = arena.virt_start + arena.virt_bump
        arena.virt_bump += size
        arena.live_bytes += size
        self._tables[node_id].insert(RangeEntry(
            virt_start=vaddr,
            virt_end=vaddr + size,
            phys_start=phys,
            perms=PERM_READ | PERM_WRITE,
        ))
        return vaddr

    def _take_free_block(self, arena: _NodeArena,
                         size: int) -> Optional[int]:
        """Best-fit over the free list, splitting larger blocks.

        The remainder of a split stays covered by the node's existing
        TCAM entry (entries map whole bump regions), so no translation
        change is needed -- this is what makes mixed-size churn reusable
        where the old exact-size buckets leaked space.
        """
        best = -1
        for index, (_vaddr, bsize) in enumerate(arena.free_blocks):
            if bsize >= size and (best < 0
                                  or bsize < arena.free_blocks[best][1]):
                best = index
                if bsize == size:
                    break
        if best < 0:
            return None
        vaddr, bsize = arena.free_blocks.pop(best)
        if bsize > size:
            arena.free_blocks.insert(best, (vaddr + size, bsize - size))
            self.split_count += 1
        arena.free_bytes -= size
        return vaddr

    def _insert_free_block(self, node_id: int, arena: _NodeArena,
                           vaddr: int, size: int) -> None:
        """Insert a freed block, merging with virtually adjacent blocks
        that share a covering TCAM entry (same-entry adjacency implies
        physical contiguity, so the merged block is one linear span)."""
        blocks = arena.free_blocks
        index = bisect.bisect(blocks, (vaddr, size))
        blocks.insert(index, (vaddr, size))
        arena.free_bytes += size
        table = self._tables[node_id]

        def mergeable(left: Tuple[int, int], right: Tuple[int, int]) -> bool:
            if left[0] + left[1] != right[0]:
                return False
            span = right[0] + right[1] - left[0]
            return table.covering(left[0], span) is not None

        while (index + 1 < len(blocks)
               and mergeable(blocks[index], blocks[index + 1])):
            v, s = blocks.pop(index)
            blocks[index] = (v, s + blocks[index][1])
            self.merge_count += 1
        while index > 0 and mergeable(blocks[index - 1], blocks[index]):
            v, s = blocks.pop(index)
            index -= 1
            blocks[index] = (blocks[index][0], blocks[index][1] + s)
            self.merge_count += 1

    def _grab_phys(self, arena: _NodeArena, size: int,
                   node_id: int) -> int:
        best = -1
        for index, (_phys, bsize) in enumerate(arena.phys_free):
            if bsize >= size and (best < 0
                                  or bsize < arena.phys_free[best][1]):
                best = index
                if bsize == size:
                    break
        if best >= 0:
            phys, bsize = arena.phys_free.pop(best)
            if bsize > size:
                arena.phys_free.insert(best, (phys + size, bsize - size))
            arena.phys_free_bytes -= size
            return phys
        if arena.capacity - arena.phys_bump < size:
            raise AllocationError(
                f"node {node_id} out of physical memory ({size} bytes "
                f"requested, {arena.capacity - arena.phys_bump} free)")
        phys = arena.phys_bump
        arena.phys_bump += size
        return phys
