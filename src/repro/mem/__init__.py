"""Disaggregated memory substrate.

This package models the memory side of the rack: byte-addressable DRAM at
each memory node (:mod:`~repro.mem.physical`), a global virtual address
space range-partitioned across nodes (:mod:`~repro.mem.addrspace`),
range-based translation with protection as held in the accelerator's TCAM
(:mod:`~repro.mem.translation`), allocation policies
(:mod:`~repro.mem.allocator`), and the memory node assembly
(:mod:`~repro.mem.node`).  Linked data structures are laid out into this
substrate with :mod:`~repro.mem.layout` and traversed by real pointer
values -- the same addresses the pulse ISA interpreter chases.
"""

from repro.mem.addrspace import AddressSpace
from repro.mem.allocator import (
    AllocationError,
    DisaggregatedAllocator,
    PlacementPolicy,
)
from repro.mem.layout import Field, StructLayout
from repro.mem.node import GlobalMemory, MemoryNode
from repro.mem.physical import MemoryFault, PhysicalMemory
from repro.mem.translation import (
    PERM_READ,
    PERM_WRITE,
    ProtectionFault,
    RangeTranslationTable,
    TranslationFault,
)

__all__ = [
    "AddressSpace",
    "AllocationError",
    "DisaggregatedAllocator",
    "Field",
    "GlobalMemory",
    "MemoryFault",
    "MemoryNode",
    "PERM_READ",
    "PERM_WRITE",
    "PlacementPolicy",
    "PhysicalMemory",
    "ProtectionFault",
    "RangeTranslationTable",
    "StructLayout",
    "TranslationFault",
]
