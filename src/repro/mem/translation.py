"""Range-based address translation and protection (the accelerator TCAM).

Section 4.2.1: pulse uses range-based translation entries held in TCAM
instead of fixed-size page tables, reducing on-chip state.  Each memory
node's accelerator holds entries only for its own ranges (hierarchical
translation, section 5); a lookup miss means the pointer lives on another
node (or is invalid), and the accelerator bounces the request back to the
switch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

try:  # used only by the batch tier's vectorized TLB probe
    import numpy as _np
except ImportError:  # pragma: no cover - the image bakes numpy in
    _np = None  # type: ignore[assignment]

PERM_READ = 0x1
PERM_WRITE = 0x2


class TranslationFault(Exception):
    """Virtual address not covered by any local range entry."""

    def __init__(self, vaddr: int):
        super().__init__(f"no translation for {vaddr:#x}")
        self.vaddr = vaddr


class ProtectionFault(Exception):
    """Access permissions do not allow the requested operation."""

    def __init__(self, vaddr: int, requested: int, granted: int):
        super().__init__(
            f"protection fault at {vaddr:#x}: requested "
            f"{requested:#x}, granted {granted:#x}")
        self.vaddr = vaddr
        self.requested = requested
        self.granted = granted


@dataclass
class RangeEntry:
    """One TCAM entry: [virt_start, virt_end) -> phys_start, perms."""

    virt_start: int
    virt_end: int
    phys_start: int
    perms: int = PERM_READ | PERM_WRITE

    def covers(self, vaddr: int, size: int) -> bool:
        return self.virt_start <= vaddr and vaddr + size <= self.virt_end

    def translate(self, vaddr: int) -> int:
        return self.phys_start + (vaddr - self.virt_start)


class RangeTranslationTable:
    """Sorted range entries with a capacity cap modeling TCAM size."""

    def __init__(self, capacity: int = 1024):
        if capacity < 1:
            raise ValueError("TCAM capacity must be >= 1")
        self.capacity = capacity
        self._entries: List[RangeEntry] = []
        self.lookups = 0
        self.misses = 0
        #: bumped on every remap (insert/permission change) so cached
        #: views of this table (:class:`TranslationCache`) can detect
        #: staleness and invalidate themselves
        self.version = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def entries(self) -> List[RangeEntry]:
        return list(self._entries)

    def insert(self, entry: RangeEntry) -> None:
        """Insert an entry, coalescing with an adjacent compatible one.

        Coalescing keeps the table within TCAM capacity when an allocator
        grows a region bump-style (the common case).
        """
        if entry.virt_end <= entry.virt_start:
            raise ValueError("empty or inverted range")
        for existing in self._entries:
            if (entry.virt_start < existing.virt_end
                    and existing.virt_start < entry.virt_end):
                raise ValueError(
                    f"overlapping translation ranges: "
                    f"[{entry.virt_start:#x},{entry.virt_end:#x}) vs "
                    f"[{existing.virt_start:#x},{existing.virt_end:#x})")
        # Try to merge with a neighbor that is contiguous in both spaces.
        for existing in self._entries:
            contiguous = (
                existing.virt_end == entry.virt_start
                and existing.phys_start + (existing.virt_end
                                           - existing.virt_start)
                == entry.phys_start
                and existing.perms == entry.perms
            )
            if contiguous:
                existing.virt_end = entry.virt_end
                self.version += 1
                return
            contiguous_before = (
                entry.virt_end == existing.virt_start
                and entry.phys_start + (entry.virt_end - entry.virt_start)
                == existing.phys_start
                and existing.perms == entry.perms
            )
            if contiguous_before:
                existing.virt_start = entry.virt_start
                existing.phys_start = entry.phys_start
                self.version += 1
                return
        if len(self._entries) >= self.capacity:
            raise ValueError(
                f"TCAM full: {len(self._entries)} entries, capacity "
                f"{self.capacity}")
        self._entries.append(entry)
        self._entries.sort(key=lambda e: e.virt_start)
        self.version += 1

    def covering(self, vaddr: int, size: int = 1) -> Optional[RangeEntry]:
        """Like :meth:`lookup` but without touching the lookup counters
        (for allocator/migration bookkeeping, not modeled accesses)."""
        for entry in self._entries:
            if entry.covers(vaddr, size):
                return entry
        return None

    def lookup(self, vaddr: int, size: int = 1) -> Optional[RangeEntry]:
        """Entry covering [vaddr, vaddr+size), or None (a miss)."""
        self.lookups += 1
        for entry in self._entries:
            if entry.covers(vaddr, size):
                return entry
        self.misses += 1
        return None

    def translate(self, vaddr: int, size: int = 1,
                  access: int = PERM_READ) -> int:
        """Translate or raise TranslationFault / ProtectionFault."""
        entry = self.lookup(vaddr, size)
        if entry is None:
            raise TranslationFault(vaddr)
        if (entry.perms & access) != access:
            raise ProtectionFault(vaddr, access, entry.perms)
        return entry.translate(vaddr)

    def remove_range(self, virt_start: int, virt_end: int
                     ) -> List[RangeEntry]:
        """Unmap [virt_start, virt_end), splitting partial overlaps.

        The removed coverage is returned as one :class:`RangeEntry` per
        contiguous removed piece (the migration engine uses these to
        locate the bytes being moved and to release their physical
        backing).  Entries only partially covered are split: the
        non-overlapping remainders stay mapped, with their physical
        offsets preserved.  Bumps ``version`` exactly once so every
        :class:`TranslationCache` over this table invalidates -- this is
        the TLB-shootdown half of a migration fence.
        """
        if virt_end <= virt_start:
            raise ValueError("empty or inverted range")
        removed: List[RangeEntry] = []
        kept: List[RangeEntry] = []
        for entry in self._entries:
            if entry.virt_end <= virt_start or virt_end <= entry.virt_start:
                kept.append(entry)
                continue
            cut_start = max(entry.virt_start, virt_start)
            cut_end = min(entry.virt_end, virt_end)
            removed.append(RangeEntry(
                virt_start=cut_start, virt_end=cut_end,
                phys_start=entry.translate(cut_start), perms=entry.perms))
            if entry.virt_start < cut_start:
                kept.append(RangeEntry(
                    virt_start=entry.virt_start, virt_end=cut_start,
                    phys_start=entry.phys_start, perms=entry.perms))
            if cut_end < entry.virt_end:
                kept.append(RangeEntry(
                    virt_start=cut_end, virt_end=entry.virt_end,
                    phys_start=entry.translate(cut_end), perms=entry.perms))
        if not removed:
            return []
        if len(kept) > self.capacity:
            raise ValueError(
                f"TCAM full: splitting [{virt_start:#x},{virt_end:#x}) "
                f"needs {len(kept)} entries, capacity {self.capacity}")
        kept.sort(key=lambda e: e.virt_start)
        self._entries = kept
        self.version += 1
        return removed

    def set_permissions(self, virt_start: int, perms: int) -> None:
        """Change permissions of the entry starting at ``virt_start``."""
        for entry in self._entries:
            if entry.virt_start == virt_start:
                entry.perms = perms
                self.version += 1
                return
        raise TranslationFault(virt_start)


class TranslationCache:
    """A per-core TLB over one node's range table (entry granularity).

    The memory access pipeline translates every iteration's aggregated
    LOAD; hardware would not walk the full TCAM each time but hit a tiny
    cache of recently used entries.  This models that stage: a handful
    of whole :class:`RangeEntry` objects in MRU order, checked before
    the backing :class:`RangeTranslationTable`, invalidated wholesale
    whenever the table remaps (its ``version`` moves).  Misses --
    including foreign/invalid pointers -- are never cached, so a re-
    routed traversal always re-consults the authoritative table.

    ``hits``/``misses`` count locally and, when metric counters are
    supplied, feed the registry (``<node>.acc.tlb.hits`` / ``.misses``).
    """

    def __init__(self, table: RangeTranslationTable, capacity: int = 8,
                 hit_counter=None, miss_counter=None):
        if capacity < 1:
            raise ValueError("translation cache needs >= 1 entry")
        self.table = table
        self.capacity = capacity
        self._entries: List[RangeEntry] = []
        self._version = table.version
        self.hits = 0
        self.misses = 0
        self._hit_counter = hit_counter
        self._miss_counter = miss_counter

    def __len__(self) -> int:
        return len(self._entries)

    def flush(self) -> None:
        self._entries.clear()
        self._version = self.table.version

    def lookup(self, vaddr: int, size: int = 1) -> Optional[RangeEntry]:
        """Entry covering [vaddr, vaddr+size), or None (a table miss)."""
        if self._version != self.table.version:
            self.flush()
        entries = self._entries
        for index, entry in enumerate(entries):
            if entry.covers(vaddr, size):
                self.hits += 1
                if self._hit_counter is not None:
                    self._hit_counter.inc()
                if index:
                    entries.insert(0, entries.pop(index))
                return entry
        self.misses += 1
        if self._miss_counter is not None:
            self._miss_counter.inc()
        entry = self.table.lookup(vaddr, size)
        if entry is not None:
            entries.insert(0, entry)
            if len(entries) > self.capacity:
                entries.pop()
        return entry

    def lookup_many(self, vaddrs, size: int = 1) -> List[Optional[RangeEntry]]:
        """One vectorized TLB probe over a whole batch of lane addresses.

        Containment against each cached entry is checked for *all*
        addresses at once (one numpy compare per cached entry -- the
        hardware analogue is the lanes sharing one ported TLB lookup);
        addresses no cached entry covers fall back to the scalar
        :meth:`lookup`, which consults the authoritative table, counts
        the miss, and inserts on a table hit.  Hit/miss accounting
        matches N scalar lookups exactly.
        """
        if self._version != self.table.version:
            self.flush()
        count = len(vaddrs)
        results: List[Optional[RangeEntry]] = [None] * count
        entries = self._entries
        if _np is not None and entries and count > 1:
            addrs = _np.asarray(vaddrs, dtype=_np.uint64)
            ends = addrs + _np.uint64(size)
            unresolved = _np.ones(count, dtype=bool)
            hits = 0
            for entry in list(entries):
                covered = (unresolved
                           & (addrs >= _np.uint64(entry.virt_start))
                           & (ends <= _np.uint64(entry.virt_end)))
                if covered.any():
                    for index in _np.flatnonzero(covered):
                        results[index] = entry
                    hits += int(covered.sum())
                    unresolved &= ~covered
                    if not unresolved.any():
                        break
            if hits:
                self.hits += hits
                if self._hit_counter is not None:
                    self._hit_counter.inc(hits)
            for index in _np.flatnonzero(unresolved):
                results[index] = self.lookup(int(vaddrs[index]), size)
            return results
        return [self.lookup(int(vaddr), size) for vaddr in vaddrs]

    def revalidate(self, entry: RangeEntry, vaddr: int,
                   size: int = 1) -> Optional[RangeEntry]:
        """Re-check a held entry after simulated time has passed.

        A migration fence may remap the table between a pipeline's
        translation stage and its use of the translated address; the
        hardware analogue is the in-flight access being replayed against
        the updated TCAM.  If the table has not moved, the held entry is
        still authoritative and is returned unchanged (zero cost); if it
        has, the cache flushes and the address is re-resolved -- None
        means the mapping is gone (the segment migrated away) and the
        caller must take the miss path.
        """
        if self._version == self.table.version:
            return entry
        self.flush()
        fresh = self.table.lookup(vaddr, size)
        if fresh is not None:
            self._entries.insert(0, fresh)
            if len(self._entries) > self.capacity:
                self._entries.pop()
        return fresh
