"""Struct layouts: typed field packing for nodes of linked structures.

Data structures on disaggregated memory are stored as raw bytes; a
:class:`StructLayout` describes one record type (offsets, sizes, codecs) so
the Python-side structure code and the pulse ISA kernels agree on field
offsets.  The kernel builder reads offsets from the same layout object the
serializer used, which keeps the two from drifting.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

#: supported scalar codecs: name -> (struct format, size)
_SCALAR_CODECS: Dict[str, Tuple[str, int]] = {
    "u8": ("<B", 1),
    "u16": ("<H", 2),
    "u32": ("<I", 4),
    "u64": ("<Q", 8),
    "i32": ("<i", 4),
    "i64": ("<q", 8),
    "f64": ("<d", 8),
    "ptr": ("<Q", 8),  # virtual addresses are 64-bit
}


class LayoutError(Exception):
    """Malformed layout definition or field access."""


@dataclass(frozen=True)
class Field:
    """One field in a record: a scalar, a fixed byte blob, or an array.

    ``kind`` is a scalar codec name, ``"bytes"`` (fixed-size blob), or a
    scalar codec with ``count > 1`` (inline array).
    """

    name: str
    kind: str
    count: int = 1
    size: int = 0  # only for kind == "bytes"

    def byte_size(self) -> int:
        if self.kind == "bytes":
            if self.size <= 0:
                raise LayoutError(f"bytes field {self.name!r} needs size > 0")
            return self.size
        if self.kind not in _SCALAR_CODECS:
            raise LayoutError(f"unknown field kind {self.kind!r}")
        return _SCALAR_CODECS[self.kind][1] * self.count


class StructLayout:
    """A packed (no padding) record layout with named fields.

    The absence of padding is deliberate: the paper's structures are
    hand-packed for the accelerator's aggregated LOAD window (<=256 B per
    iteration), and explicit offsets make the ISA kernels auditable.
    """

    def __init__(self, name: str, fields: Iterable[Field]):
        self.name = name
        self.fields: List[Field] = list(fields)
        if not self.fields:
            raise LayoutError(f"layout {name!r} has no fields")
        seen = set()
        self._offsets: Dict[str, int] = {}
        offset = 0
        for f in self.fields:
            if f.name in seen:
                raise LayoutError(f"duplicate field {f.name!r} in {name!r}")
            seen.add(f.name)
            self._offsets[f.name] = offset
            offset += f.byte_size()
        self.size = offset
        self._by_name = {f.name: f for f in self.fields}

    def offset(self, field_name: str, index: int = 0) -> int:
        """Byte offset of ``field_name`` (element ``index`` for arrays)."""
        f = self._field(field_name)
        if index:
            if f.kind == "bytes":
                if index >= f.size:
                    raise LayoutError(
                        f"index {index} out of bytes field {field_name!r}")
                return self._offsets[field_name] + index
            if index >= f.count:
                raise LayoutError(
                    f"index {index} out of array field {field_name!r}")
            return (self._offsets[field_name]
                    + index * _SCALAR_CODECS[f.kind][1])
        return self._offsets[field_name]

    def field_size(self, field_name: str) -> int:
        """Size in bytes of one element of the field."""
        f = self._field(field_name)
        if f.kind == "bytes":
            return f.size
        return _SCALAR_CODECS[f.kind][1]

    def _field(self, field_name: str) -> Field:
        if field_name not in self._by_name:
            raise LayoutError(
                f"layout {self.name!r} has no field {field_name!r}")
        return self._by_name[field_name]

    # -- pack / unpack -----------------------------------------------------
    def pack(self, **values) -> bytes:
        """Serialize a full record; missing fields default to zeros."""
        buf = bytearray(self.size)
        for name, value in values.items():
            self.pack_field_into(buf, name, value)
        return bytes(buf)

    def pack_field_into(self, buf: bytearray, field_name: str,
                        value) -> None:
        f = self._field(field_name)
        offset = self._offsets[field_name]
        if f.kind == "bytes":
            data = bytes(value)
            if len(data) > f.size:
                raise LayoutError(
                    f"value too large for bytes field {field_name!r}")
            buf[offset:offset + len(data)] = data
            return
        fmt, scalar_size = _SCALAR_CODECS[f.kind]
        if f.count == 1:
            struct.pack_into(fmt, buf, offset, value)
        else:
            items = list(value)
            if len(items) > f.count:
                raise LayoutError(
                    f"too many elements for array field {field_name!r}")
            for i, item in enumerate(items):
                struct.pack_into(fmt, buf, offset + i * scalar_size, item)

    def unpack(self, data: bytes) -> Dict[str, object]:
        """Deserialize a full record into a field-name -> value dict."""
        if len(data) < self.size:
            raise LayoutError(
                f"buffer too small for layout {self.name!r}: "
                f"{len(data)} < {self.size}")
        out: Dict[str, object] = {}
        for f in self.fields:
            out[f.name] = self.unpack_field(data, f.name)
        return out

    def unpack_field(self, data: bytes, field_name: str):
        f = self._field(field_name)
        offset = self._offsets[field_name]
        if f.kind == "bytes":
            return bytes(data[offset:offset + f.size])
        fmt, scalar_size = _SCALAR_CODECS[f.kind]
        if f.count == 1:
            return struct.unpack_from(fmt, data, offset)[0]
        return [
            struct.unpack_from(fmt, data, offset + i * scalar_size)[0]
            for i in range(f.count)
        ]
