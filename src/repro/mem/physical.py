"""Byte-addressable physical memory for one memory node."""

from __future__ import annotations

try:  # used only by the batch tier's gathered LOAD
    import numpy as _np
except ImportError:  # pragma: no cover - the image bakes numpy in
    _np = None  # type: ignore[assignment]


class MemoryFault(Exception):
    """Out-of-bounds or malformed physical memory access."""


class PhysicalMemory:
    """A flat, bounds-checked DRAM array.

    Addresses here are *physical* (node-local, starting at zero); virtual
    addresses are resolved through :class:`~repro.mem.translation.
    RangeTranslationTable` before reaching this layer.  Byte counters feed
    the memory-bandwidth utilization numbers in Fig 6.
    """

    def __init__(self, size: int):
        if size <= 0:
            raise MemoryFault(f"invalid memory size: {size}")
        self.size = size
        self._data = bytearray(size)
        self.bytes_read = 0
        self.bytes_written = 0

    def _check(self, addr: int, length: int) -> None:
        if length < 0:
            raise MemoryFault(f"negative access length: {length}")
        if addr < 0 or addr + length > self.size:
            raise MemoryFault(
                f"access [{addr:#x}, {addr + length:#x}) outside "
                f"[0, {self.size:#x})"
            )

    def read(self, addr: int, length: int) -> bytes:
        """Read ``length`` bytes at physical ``addr``."""
        self._check(addr, length)
        self.bytes_read += length
        return bytes(self._data[addr:addr + length])

    def write(self, addr: int, data: bytes) -> None:
        """Write ``data`` at physical ``addr``."""
        self._check(addr, len(data))
        self.bytes_written += len(data)
        self._data[addr:addr + len(data)] = data

    def gather_rows(self, addrs, width: int):
        """Vectorized multi-row read: ``[len(addrs), width]`` uint8.

        The batch machine's single gathered LOAD per lockstep iteration
        -- one fancy index instead of N ``read()`` calls.  Counts the
        same ``bytes_read`` the scalar path would.
        """
        if _np is None:  # pragma: no cover - guarded by the batch tier
            raise MemoryFault("gather_rows requires numpy")
        if width < 0:
            raise MemoryFault(f"negative access length: {width}")
        index = _np.asarray(addrs, dtype=_np.int64)
        if index.size:
            low = int(index.min())
            high = int(index.max())
            if low < 0 or high + width > self.size:
                raise MemoryFault(
                    f"access [{low:#x}, {high + width:#x}) outside "
                    f"[0, {self.size:#x})"
                )
        self.bytes_read += index.size * width
        flat = _np.frombuffer(self._data, dtype=_np.uint8)
        return flat[index[:, None] + _np.arange(width)]

    def read_u64(self, addr: int) -> int:
        return int.from_bytes(self.read(addr, 8), "little")

    def write_u64(self, addr: int, value: int) -> None:
        self.write(addr, (value & (2**64 - 1)).to_bytes(8, "little"))

    def reset_counters(self) -> None:
        self.bytes_read = 0
        self.bytes_written = 0
