"""Memory node assembly and the rack-wide memory facade.

:class:`MemoryNode` bundles one node's DRAM, translation table, and byte
counters.  :class:`GlobalMemory` is what data-structure code programs
against: allocate, read, and write by *virtual* address anywhere in the
rack.  GlobalMemory performs *functional* (zero-simulated-time) accesses;
all timed paths (accelerator pipelines, RPC workers, paging) charge their
own latencies and then touch the same bytes through the owning node.

Ownership is resolved through the mutable
:class:`~repro.placement.rangemap.PlacementMap` (initially identical to
the arithmetic partition), so a segment live-migrated by
``repro.placement`` is transparently served by its new node.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.mem.addrspace import AddressSpace
from repro.mem.allocator import DisaggregatedAllocator, PlacementPolicy
from repro.mem.physical import PhysicalMemory
from repro.mem.translation import (
    PERM_READ,
    PERM_WRITE,
    RangeTranslationTable,
    TranslationFault,
)
from repro.placement.rangemap import PlacementMap


class ForwardingTable:
    """Per-node redirect hints left behind by migrations.

    After a segment's fence, the *old* owner keeps a (range -> new owner)
    hint so straggler frames -- parked in its admission queue, or in
    flight when the switch rule changed -- get a ``MOVED`` reply instead
    of a spurious fault.  Hints are advisory (the switch re-resolves
    against the live map, which may have moved the segment again) and
    are garbage collected after the forwarding window: by then every
    straggler has either drained or been retried by its client.
    """

    def __init__(self):
        #: hint id -> (virt_start, virt_end, new_owner, installed_at_ns);
        #: keyed by a per-table monotonic id so each migration's expiry
        #: removes exactly the hint *it* installed.  Expiring by time
        #: window alone is wrong: two overlapping migrations inside one
        #: forward window would have the first window's sweep drop the
        #: second migration's still-live hint.
        self._hints: Dict[int, Tuple[int, int, int, float]] = {}
        self._next_id = 0
        self.redirects = 0

    def __len__(self) -> int:
        return len(self._hints)

    def install(self, virt_start: int, virt_end: int, new_owner: int,
                now: float) -> int:
        """Install a redirect hint; returns its id for exact removal."""
        hint_id = self._next_id
        self._next_id += 1
        self._hints[hint_id] = (virt_start, virt_end, new_owner, now)
        return hint_id

    def lookup(self, vaddr: int) -> Optional[int]:
        # Newest matching hint wins: a range migrated twice should
        # redirect stragglers to the most recent destination.
        best_id = -1
        best_owner = None
        for hint_id, (start, end, owner, _t) in self._hints.items():
            if start <= vaddr < end and hint_id > best_id:
                best_id = hint_id
                best_owner = owner
        if best_owner is not None:
            self.redirects += 1
        return best_owner

    def remove(self, hint_id: int) -> bool:
        """Drop one specific hint (a migration's own expiry timer)."""
        return self._hints.pop(hint_id, None) is not None

    def expire(self, now: float, window_ns: float) -> int:
        """Age sweep: drop hints older than the window; returns #dropped.

        Kept for administrative cleanup; live migrations remove their
        own hint by id via :meth:`remove` instead.
        """
        stale = [hint_id for hint_id, (_s, _e, _o, t) in
                 self._hints.items() if now - t > window_ns]
        for hint_id in stale:
            del self._hints[hint_id]
        return len(stale)


class MemoryNode:
    """One disaggregated memory node: DRAM + local translation state."""

    def __init__(self, node_id: int, addrspace: AddressSpace,
                 tcam_capacity: int = 1024):
        self.node_id = node_id
        self.name = f"mem{node_id}"
        self.addrspace = addrspace
        self.memory = PhysicalMemory(addrspace.node_capacity)
        self.table = RangeTranslationTable(capacity=tcam_capacity)
        self.forwarding = ForwardingTable()
        self.virt_start, self.virt_end = addrspace.range_of(node_id)

    def attach_metrics(self, registry, clock) -> None:
        """Register DRAM-traffic gauges (``mem<i>.dram.*``).

        Callback gauges read the live byte counters at snapshot time, so
        the node's bandwidth shows up in ``registry.snapshot()`` without
        per-access bookkeeping.  ``clock`` supplies simulated time for
        the bytes/ns gauge.
        """
        prefix = f"{self.name}.dram"
        registry.gauge(f"{prefix}.bytes_read",
                       fn=lambda: self.memory.bytes_read)
        registry.gauge(f"{prefix}.bytes_written",
                       fn=lambda: self.memory.bytes_written)

        def bandwidth() -> float:
            now = clock()
            return self.bytes_served / now if now > 0 else 0.0

        registry.gauge(f"{prefix}.bandwidth_bytes_per_ns", fn=bandwidth)

    def owns(self, vaddr: int) -> bool:
        """True if ``vaddr`` falls in this node's partition of the rack."""
        return self.virt_start <= vaddr < self.virt_end

    def read_virt(self, vaddr: int, size: int,
                  access: int = PERM_READ) -> bytes:
        """Translate + read; raises TranslationFault for foreign pointers."""
        phys = self.table.translate(vaddr, size, access)
        return self.memory.read(phys, size)

    def write_virt(self, vaddr: int, data: bytes) -> None:
        phys = self.table.translate(vaddr, len(data), PERM_WRITE)
        self.memory.write(phys, data)

    @property
    def bytes_served(self) -> int:
        """Total DRAM traffic (both directions), for Fig 6."""
        return self.memory.bytes_read + self.memory.bytes_written


class GlobalMemory:
    """The rack's memory: nodes + allocator + virtual-address access."""

    def __init__(self, node_count: int, node_capacity: int,
                 policy: PlacementPolicy = PlacementPolicy.UNIFORM,
                 tcam_capacity: int = 1024):
        self.addrspace = AddressSpace(node_count, node_capacity)
        self._tcam_capacity = tcam_capacity
        self.nodes: List[MemoryNode] = [
            MemoryNode(n, self.addrspace, tcam_capacity)
            for n in range(node_count)
        ]
        self.allocator = DisaggregatedAllocator(
            self.addrspace, [n.table for n in self.nodes], policy)
        #: the live ownership map (initially == the arithmetic partition);
        #: shared with the switch and mutated only by the migration engine
        self.placement = PlacementMap(self.addrspace)
        self.allocator.owner_map = self.placement
        #: set by the cluster when durability is enabled; functional
        #: (zero-time) writes are captured into the bootstrap store so
        #: recovery can rebuild data that predates the redo log
        self.durability = None

    @property
    def node_count(self) -> int:
        return len(self.nodes)

    def add_node(self) -> MemoryNode:
        """Grow the rack by one memory node (online scale-out).

        Extends the address space, builds the node, and registers it
        with the allocator and placement map.  The caller (the cluster)
        wires up the accelerator and metrics.
        """
        node_id = self.addrspace.grow(1)
        node = MemoryNode(node_id, self.addrspace, self._tcam_capacity)
        self.nodes.append(node)
        self.allocator.add_node(node.table)
        self.placement.add_node(node_id)
        return node

    def node_of(self, vaddr: int) -> Optional[MemoryNode]:
        node_id = self.placement.node_of(vaddr)
        if node_id is None:
            return None
        return self.nodes[node_id]

    def alloc(self, size: int, preferred_node: Optional[int] = None) -> int:
        return self.allocator.alloc(size, preferred_node)

    def arena(self, structure_id: int, chain_hint=0,
              preferred_node: Optional[int] = None):
        """A traversal arena handle (see ``DisaggregatedAllocator.arena``)."""
        return self.allocator.arena(structure_id, chain_hint,
                                    preferred_node=preferred_node)

    def new_structure_id(self) -> int:
        return self.allocator.new_structure_id()

    def free(self, vaddr: int) -> None:
        self.allocator.free(vaddr)

    def read(self, vaddr: int, size: int) -> bytes:
        node = self.node_of(vaddr)
        if node is None:
            raise TranslationFault(vaddr)
        return node.read_virt(vaddr, size)

    def write(self, vaddr: int, data: bytes) -> None:
        node = self.node_of(vaddr)
        if node is None:
            raise TranslationFault(vaddr)
        node.write_virt(vaddr, data)
        if self.durability is not None:
            self.durability.capture(vaddr, data)

    def read_u64(self, vaddr: int) -> int:
        return int.from_bytes(self.read(vaddr, 8), "little")

    def write_u64(self, vaddr: int, value: int) -> None:
        self.write(vaddr, (value & (2**64 - 1)).to_bytes(8, "little"))

    def reset_counters(self) -> None:
        for node in self.nodes:
            node.memory.reset_counters()
