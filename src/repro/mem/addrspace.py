"""Global virtual address space, range-partitioned across memory nodes.

Section 5 of the paper: the address space is range partitioned so the
programmable switch needs exactly one routing rule per memory node -- the
rule maps a base-address range to an output port.  This module is that
map.  Address zero is reserved as the null pointer, so node ranges start
at a non-zero base.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

#: the null pointer; kernels compare against this to detect list ends
NULL_PTR = 0

#: default base of the first node's range (keeps 0 unmapped)
DEFAULT_BASE = 0x1000_0000


class AddressSpaceError(Exception):
    """Invalid address-space construction or lookup."""


class AddressSpace:
    """Range partitioning of virtual addresses over ``node_count`` nodes."""

    def __init__(self, node_count: int, node_capacity: int,
                 base: int = DEFAULT_BASE):
        if node_count < 1:
            raise AddressSpaceError("need at least one memory node")
        if node_capacity <= 0:
            raise AddressSpaceError("node capacity must be positive")
        if base <= NULL_PTR:
            raise AddressSpaceError("base must leave address 0 unmapped")
        self.node_count = node_count
        self.node_capacity = node_capacity
        self.base = base

    def range_of(self, node_id: int) -> Tuple[int, int]:
        """Virtual [start, end) owned by ``node_id``."""
        self._check_node(node_id)
        start = self.base + node_id * self.node_capacity
        return start, start + self.node_capacity

    def node_of(self, vaddr: int) -> Optional[int]:
        """Node owning ``vaddr``, or None if unmapped (e.g. NULL)."""
        if vaddr < self.base:
            return None
        node_id = (vaddr - self.base) // self.node_capacity
        if node_id >= self.node_count:
            return None
        return node_id

    def to_physical(self, vaddr: int) -> Tuple[int, int]:
        """(node_id, node-local physical address) for ``vaddr``."""
        node_id = self.node_of(vaddr)
        if node_id is None:
            raise AddressSpaceError(f"unmapped virtual address {vaddr:#x}")
        start, _ = self.range_of(node_id)
        return node_id, vaddr - start

    def switch_rules(self) -> List[Tuple[int, int, int]]:
        """(range_start, range_end, node_id) rules -- one per node (§6)."""
        return [(*self.range_of(n), n) for n in range(self.node_count)]

    def grow(self, extra: int = 1) -> int:
        """Extend the space by ``extra`` nodes (online scale-out).

        Range partitioning makes growth trivial: the new node's range
        starts where the last one ended, so existing addresses (and the
        arithmetic *home* of every pointer) never change.  Returns the
        id of the first newly added node.
        """
        if extra < 1:
            raise AddressSpaceError("must grow by at least one node")
        first_new = self.node_count
        self.node_count += extra
        return first_new

    def _check_node(self, node_id: int) -> None:
        if not 0 <= node_id < self.node_count:
            raise AddressSpaceError(
                f"node {node_id} outside [0, {self.node_count})")
